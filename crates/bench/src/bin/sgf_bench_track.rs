//! Continuous benchmark tracking for the reproduction suite.
//!
//! Subcommands:
//!
//! * `run` — execute the fig*/table* binaries (found next to this executable)
//!   with `SGF_BENCH_DIR` set, failing fast on the first nonzero exit, so one
//!   invocation refreshes every `BENCH_<series>.json` document.
//! * `compare` — gate the emitted documents against the last trajectory entry
//!   recorded at the same (smoke, scale); exits 1 on any regression.
//! * `append` — bundle the emitted documents into one line of the trajectory
//!   file (the new baseline).
//! * `notes` — regenerate the human-readable benchmark tables from the
//!   emitted documents.
//!
//! Exit codes: 0 success, 1 regression found, 2 usage or I/O error.

use bench::track::{self, BenchDoc, TrajectoryEntry};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: sgf-bench-track <command> [options]

commands:
  run      run the reproduction binaries, emitting BENCH_*.json into --dir
             [--dir DIR] [--scale N] [--smoke] [--bin NAME]...
  compare  gate the documents in --dir against the stored baseline
             [--dir DIR] [--trajectory FILE] [--tolerance FRACTION] [--gate-time]
  append   append the documents in --dir to the trajectory (new baseline)
             [--dir DIR] [--trajectory FILE]
  notes    regenerate the benchmark tables from the documents in --dir
             [--dir DIR] [--out FILE]

defaults: --dir artifacts, --trajectory BENCH_TRAJECTORY.jsonl, --tolerance 0.05";

/// The reproduction binaries `run` executes, in suite order.
const SUITE: [&str; 13] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig_index",
    "fig_folding",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
];

struct Options {
    dir: PathBuf,
    trajectory: PathBuf,
    tolerance: f64,
    gate_time: bool,
    scale: usize,
    smoke: bool,
    out: Option<PathBuf>,
    bins: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        dir: PathBuf::from("artifacts"),
        trajectory: PathBuf::from("BENCH_TRAJECTORY.jsonl"),
        tolerance: 0.05,
        gate_time: false,
        scale: 1,
        smoke: false,
        out: None,
        bins: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        match arg.as_str() {
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            "--trajectory" => opts.trajectory = PathBuf::from(value("--trajectory")?),
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or("`--tolerance` needs a non-negative fraction")?;
            }
            "--gate-time" => opts.gate_time = true,
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&s| s > 0)
                    .ok_or("`--scale` needs a positive integer")?;
            }
            "--smoke" => opts.smoke = true,
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--bin" => opts.bins.push(value("--bin")?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_options(&args[1..]) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("sgf-bench-track: {err}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&opts),
        "compare" => cmd_compare(&opts),
        "append" => cmd_append(&opts),
        "notes" => cmd_notes(&opts),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(err) => {
            eprintln!("sgf-bench-track: {err}");
            ExitCode::from(2)
        }
    }
}

/// Run the suite binaries found next to this executable, fail-fast.
fn cmd_run(opts: &Options) -> Result<ExitCode, String> {
    let bin_dir = std::env::current_exe()
        .map_err(|e| format!("cannot locate this executable: {e}"))?
        .parent()
        .ok_or("this executable has no parent directory")?
        .to_path_buf();
    std::fs::create_dir_all(&opts.dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.dir.display()))?;
    let bins: Vec<&str> = if opts.bins.is_empty() {
        SUITE.to_vec()
    } else {
        opts.bins.iter().map(String::as_str).collect()
    };
    for bin in bins {
        let path = bin_dir.join(bin);
        if !path.exists() {
            return Err(format!(
                "binary {} not found — build with `cargo build --release -p bench`",
                path.display()
            ));
        }
        eprintln!(
            "[bench-track] running {bin} (scale {}, smoke {})",
            opts.scale, opts.smoke
        );
        let mut command = std::process::Command::new(&path);
        command
            .arg(opts.scale.to_string())
            .env(track::BENCH_DIR_ENV, &opts.dir);
        if opts.smoke {
            command.env("SGF_SMOKE", "1");
        }
        let status = command
            .status()
            .map_err(|e| format!("cannot run {}: {e}", path.display()))?;
        if !status.success() {
            return Err(format!("{bin} failed with {status}"));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Load the emitted documents and check they share one (smoke, scale).
fn load_run(opts: &Options) -> Result<(Vec<BenchDoc>, TrajectoryEntry), String> {
    let docs = track::read_docs(&opts.dir)?;
    if docs.is_empty() {
        return Err(format!(
            "no BENCH_*.json documents in {} — run the suite first (see `sgf-bench-track run`)",
            opts.dir.display()
        ));
    }
    let entry = TrajectoryEntry::from_docs(docs.clone())?;
    Ok((docs, entry))
}

fn cmd_compare(opts: &Options) -> Result<ExitCode, String> {
    let (docs, entry) = load_run(opts)?;
    let history = track::read_trajectory(&opts.trajectory)?;
    let Some(baseline) = track::find_baseline(&history, entry.smoke, entry.scale) else {
        println!(
            "no baseline for (smoke {}, scale {}) in {} — nothing to compare; \
             record one with `sgf-bench-track append`",
            entry.smoke,
            entry.scale,
            opts.trajectory.display()
        );
        return Ok(ExitCode::SUCCESS);
    };
    let regressions = track::compare(&docs, baseline, opts.tolerance, opts.gate_time);
    println!(
        "compared {} series against baseline commit {} (smoke {}, scale {}, tolerance {:.1}%{})",
        docs.len(),
        baseline.commit,
        entry.smoke,
        entry.scale,
        opts.tolerance * 100.0,
        if opts.gate_time { ", gating time" } else { "" }
    );
    if regressions.is_empty() {
        println!("OK: no regressions");
        return Ok(ExitCode::SUCCESS);
    }
    for regression in &regressions {
        println!("REGRESSION: {regression}");
    }
    println!("{} regression(s) found", regressions.len());
    Ok(ExitCode::from(1))
}

fn cmd_append(opts: &Options) -> Result<ExitCode, String> {
    let (_, entry) = load_run(opts)?;
    track::append_trajectory(&opts.trajectory, &entry)?;
    println!(
        "appended {} series at commit {} (smoke {}, scale {}) to {}",
        entry.series.len(),
        entry.commit,
        entry.smoke,
        entry.scale,
        opts.trajectory.display()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_notes(opts: &Options) -> Result<ExitCode, String> {
    let (docs, entry) = load_run(opts)?;
    let notes = render_notes(&docs, &entry);
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &notes)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("wrote {}", path.display());
        }
        None => print!("{notes}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// Render the benchmark tables (BENCH_NOTES.md) from a run's documents.
fn render_notes(docs: &[BenchDoc], entry: &TrajectoryEntry) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mode = if entry.smoke { "smoke" } else { "full" };
    let _ = writeln!(out, "# Benchmark notes — reference wall clocks\n");
    let _ = writeln!(
        out,
        "> Generated by `sgf-bench-track notes` from the machine-readable\n\
         > `BENCH_*.json` documents emitted by the reproduction suite\n\
         > (commit `{}`, {} mode, scale {}).  Do not edit the tables by\n\
         > hand — rerun `scripts/repro.sh` and `sgf-bench-track notes` instead.\n\
         > Wall clocks are machine-dependent; the counters are deterministic\n\
         > and gated by `sgf-bench-track compare`.\n",
        entry.commit, mode, entry.scale
    );
    let _ = writeln!(out, "## Suite totals\n");
    let _ = writeln!(
        out,
        "| series | wall clock (s) | released | candidates | records examined |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|");
    for doc in docs {
        let Some(total) = doc.point("total") else {
            continue;
        };
        let count = |name: &str| match total.counters.get(name) {
            Some(v) => v.to_string(),
            None => "—".to_string(),
        };
        let _ = writeln!(
            out,
            "| {} | {:.1} | {} | {} | {} |",
            doc.series,
            total.values.get("wall_seconds").copied().unwrap_or(0.0),
            count("released"),
            count("candidates"),
            count("records_examined"),
        );
    }
    for doc in docs {
        let sweep: Vec<_> = doc.points.iter().filter(|p| p.label != "total").collect();
        if sweep.is_empty() {
            continue;
        }
        let mut counter_keys = std::collections::BTreeSet::new();
        let mut value_keys = std::collections::BTreeSet::new();
        for point in &sweep {
            counter_keys.extend(point.counters.keys().cloned());
            value_keys.extend(point.values.keys().cloned());
        }
        let _ = writeln!(out, "\n## `{}` sweep\n", doc.series);
        let _ = write!(out, "| point |");
        for key in counter_keys.iter().chain(value_keys.iter()) {
            let _ = write!(out, " {} |", key.replace('_', " "));
        }
        let _ = write!(out, "\n|---|");
        for _ in counter_keys.iter().chain(value_keys.iter()) {
            let _ = write!(out, "---:|");
        }
        let _ = writeln!(out);
        for point in &sweep {
            let noisy = if point.noisy { " \\*" } else { "" };
            let _ = write!(out, "| {}{noisy} |", point.label);
            for key in &counter_keys {
                match point.counters.get(key) {
                    Some(v) => {
                        let _ = write!(out, " {v} |");
                    }
                    None => {
                        let _ = write!(out, " — |");
                    }
                }
            }
            for key in &value_keys {
                match point.values.get(key) {
                    Some(v) => {
                        let _ = write!(out, " {v:.3} |");
                    }
                    None => {
                        let _ = write!(out, " — |");
                    }
                }
            }
            let _ = writeln!(out);
        }
        if sweep.iter().any(|p| p.noisy) {
            let _ = writeln!(
                out,
                "\n\\* noisy point: counters depend on thread timing (multi-worker run) \
                 and are exempt from regression gating; the released records themselves \
                 stay deterministic."
            );
        }
    }
    let _ = writeln!(
        out,
        "\n## Reading the tables\n\n\
         * `fig_index`: scan, inverted index, and partition store released\n\
         \x20 byte-identical records in every configuration — asserted by the\n\
         \x20 binary itself, so a seed-store divergence fails `repro.sh` and CI.\n\
         * `fig5_workers`: the released records are deterministic at every\n\
         \x20 worker count (rank selection); `selection_locks` counts shared-heap\n\
         \x20 acquisitions and `outranked_passes` counts passing proposals that\n\
         \x20 lost the rank race — together they profile the parallel release\n\
         \x20 loop's remaining shared-state traffic.\n\
         * Smoke mode (`scripts/repro.sh --smoke`) runs the same suite at\n\
         \x20 reduced sizes; its deterministic counters form the CI baseline in\n\
         \x20 `BENCH_TRAJECTORY.jsonl`."
    );
    out
}
