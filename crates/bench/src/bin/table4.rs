//! Table 4: privacy-preserving classifier comparison — DP-ERM LR/SVM trained
//! on real data versus non-private LR/SVM trained on synthetic data.

use bench::{build_context, scale_from_args};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_data::acs::attr;
use sgf_eval::{percent, table4, Table4Config, TextTable};

fn main() {
    let scale = scale_from_args();
    let recorder = bench::track::SeriesRecorder::new("table4", scale);
    let ctx = build_context(scale, 108);
    let mut rng = StdRng::seed_from_u64(108);

    let candidates: Vec<(String, &sgf_data::Dataset)> = ctx
        .synthetic_sets
        .iter()
        .map(|(label, data)| (label.clone(), data))
        .collect();
    let rows = table4(
        &ctx.split.seeds,
        &candidates,
        &ctx.split.test,
        attr::INCOME,
        &Table4Config::default(),
        &mut rng,
    );

    let mut table = TextTable::new(&["Training regime", "LR", "SVM"]);
    for row in &rows {
        table.add_row(&[
            row.label.clone(),
            percent(row.logistic_regression),
            percent(row.svm),
        ]);
    }
    println!("Table 4: Privacy-preserving classifier comparisons (epsilon = 1, scale {scale})\n");
    println!("{}", table.render());
    recorder.finish();
}
