//! Table 5: the distinguishing game — how well a random forest / tree can tell
//! real records apart from marginals and synthetics.

use bench::{base_population, build_context, scale_from_args};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_data::acs::generate_acs;
use sgf_eval::{distinguishing_table, percent, DistinguishConfig, TextTable};

fn main() {
    let scale = scale_from_args();
    let recorder = bench::track::SeriesRecorder::new("table5", scale);
    let ctx = build_context(scale, 109);
    let other_reals = generate_acs(base_population() * scale, 2109);
    let mut rng = StdRng::seed_from_u64(109);

    let mut candidates: Vec<(String, &sgf_data::Dataset)> =
        vec![("reals".to_string(), &other_reals)];
    for (label, data) in &ctx.synthetic_sets {
        candidates.push((label.clone(), data));
    }
    let config = DistinguishConfig {
        train_per_class: 700 * scale,
        test_per_class: 400 * scale,
        ..DistinguishConfig::default()
    };
    let results = distinguishing_table(&ctx.split.test, &candidates, &config, &mut rng);

    let mut table = TextTable::new(&["Candidate", "RF", "Tree"]);
    for r in &results {
        table.add_row(&[r.label.clone(), percent(r.random_forest), percent(r.tree)]);
    }
    println!("Table 5: Distinguishing game (scale {scale})\n");
    println!("{}", table.render());
    recorder.finish();
}
