//! Table 1: the pre-processed ACS-13 attribute inventory.

use sgf_data::acs::acs_schema;
use sgf_eval::TextTable;

fn main() {
    let recorder = bench::track::SeriesRecorder::new("table1", bench::scale_from_args());
    let schema = acs_schema();
    let mut table = TextTable::new(&["Name", "Type", "Cardinality"]);
    for attr in schema.attributes() {
        let kind = if attr.kind().is_categorical() {
            "Categorical"
        } else {
            "Numerical"
        };
        table.add_row(&[
            attr.name().to_string(),
            kind.to_string(),
            attr.cardinality().to_string(),
        ]);
    }
    println!("Table 1: Pre-processed ACS13 dataset attributes\n");
    println!("{}", table.render());
    recorder.finish();
}
