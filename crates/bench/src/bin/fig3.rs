//! Figure 3: statistical distance of single-attribute distributions between
//! reals and (other) reals / marginals / synthetics.

use bench::{base_population, build_context, scale_from_args};
use sgf_data::acs::generate_acs;
use sgf_eval::{compare_datasets, fixed3, TextTable};

fn main() {
    let scale = scale_from_args();
    let recorder = bench::track::SeriesRecorder::new("fig3", scale);
    let ctx = build_context(scale, 103);
    let other_reals = generate_acs(base_population() * scale, 2103);

    let mut candidates: Vec<(String, &sgf_data::Dataset)> =
        vec![("reals".to_string(), &other_reals)];
    for (label, data) in &ctx.synthetic_sets {
        candidates.push((label.clone(), data));
    }
    let reports = compare_datasets(&ctx.split.test, &candidates);

    let mut table = TextTable::new(&["Dataset", "min", "q1", "median", "q3", "max"]);
    for report in &reports {
        let s = report.attribute_summary();
        table.add_row(&[
            report.label.clone(),
            fixed3(s.min),
            fixed3(s.q1),
            fixed3(s.median),
            fixed3(s.q3),
            fixed3(s.max),
        ]);
    }
    println!("Figure 3: Statistical distance for individual attributes (scale {scale})\n");
    println!("{}", table.render());
    recorder.finish();
}
