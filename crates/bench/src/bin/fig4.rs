//! Figure 4: statistical distance of attribute-pair distributions between
//! reals and (other) reals / marginals / synthetics.

use bench::{base_population, build_context, scale_from_args};
use sgf_data::acs::generate_acs;
use sgf_eval::{compare_datasets, fixed3, TextTable};

fn main() {
    let scale = scale_from_args();
    let recorder = bench::track::SeriesRecorder::new("fig4", scale);
    let ctx = build_context(scale, 104);
    let other_reals = generate_acs(base_population() * scale, 2104);

    let mut candidates: Vec<(String, &sgf_data::Dataset)> =
        vec![("reals".to_string(), &other_reals)];
    for (label, data) in &ctx.synthetic_sets {
        candidates.push((label.clone(), data));
    }
    let reports = compare_datasets(&ctx.split.test, &candidates);

    let mut table = TextTable::new(&["Dataset", "min", "q1", "median", "q3", "max", "mean"]);
    for report in &reports {
        let s = report.pair_summary();
        table.add_row(&[
            report.label.clone(),
            fixed3(s.min),
            fixed3(s.q1),
            fixed3(s.median),
            fixed3(s.q3),
            fixed3(s.max),
            fixed3(report.mean_pair_distance()),
        ]);
    }
    println!("Figure 4: Statistical distance for pairs of attributes (scale {scale})\n");
    println!("{}", table.render());
    println!("session budget ledger: {}", ctx.ledger.to_json());
    recorder.finish();
}
