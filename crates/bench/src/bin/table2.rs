//! Table 2: dataset extraction statistics (records, possible records,
//! unique records) computed on the synthetic ACS-like population.

use bench::{base_population, scale_from_args};
use sgf_data::acs::{attr, generate_acs};
use sgf_eval::{percent, TextTable};

fn main() {
    let scale = scale_from_args();
    let recorder = bench::track::SeriesRecorder::new("table2", scale);
    let n = base_population() * scale * 10; // Table 2 is cheap: use a larger sample.
    let data = generate_acs(n, 2013);
    let unique = data.singleton_count();

    let mut table = TextTable::new(&["Statistic", "Value"]);
    table.add_row(&["Records".to_string(), data.len().to_string()]);
    table.add_row(&["Attributes".to_string(), data.schema().len().to_string()]);
    table.add_row(&[
        "Possible Records".to_string(),
        format!(
            "{} (~2^{:.0})",
            data.schema().universe_size(),
            (data.schema().universe_size() as f64).log2()
        ),
    ]);
    table.add_row(&[
        "Unique Records".to_string(),
        format!(
            "{} ({})",
            unique,
            percent(unique as f64 / data.len() as f64)
        ),
    ]);
    table.add_row(&[
        "Classification Task".to_string(),
        data.schema().attribute(attr::INCOME).name().to_string(),
    ]);
    println!("Table 2: ACS-like data extraction statistics (scale {scale})\n");
    println!("{}", table.render());
    recorder.finish();
}
