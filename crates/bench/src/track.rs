//! Machine-readable benchmark tracking: per-series `BENCH_<name>.json`
//! documents, the append-only perf-trajectory file, and the baseline
//! comparison that gates CI.
//!
//! ## Document model
//!
//! Every reproduction binary records one [`BenchDoc`] — a named series of
//! [`BenchPoint`]s.  A point separates its measurements into
//!
//! * **counters** (`u64`): RNG-seeded, machine-independent quantities
//!   (`released`, `records_examined`, …).  These are deterministic for
//!   single-worker runs, so [`compare`] gates them against the stored
//!   baseline in *both* directions: drift means the decision path changed.
//! * **values** (`f64`): time-domain quantities (`*_seconds`, `throughput_*`)
//!   that vary across machines.  They are recorded always but gated only on
//!   request (`gate_time`), directionally — more seconds or less throughput
//!   is a regression, the opposite is not.
//!
//! Points whose counters are racy by construction (multi-worker sweeps: the
//! number of *proposals* depends on thread timing even though the released
//! records do not) carry `noisy: true` and are exempt from gating.
//!
//! ## Trajectory
//!
//! `BENCH_TRAJECTORY.jsonl` holds one [`TrajectoryEntry`] per line (commit,
//! smoke flag, scale, and every series of that run).  The baseline for a
//! comparison is the **last** entry with the same (smoke, scale), so the file
//! is append-only history: perf over time is one `jq` away, and updating the
//! baseline after an intentional change is appending a new entry.

use sgf_metrics::{Json, Snapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema version stamped into every document this module writes.
pub const SCHEMA_VERSION: i64 = 1;

/// Environment variable naming the directory benchmark binaries emit their
/// `BENCH_<series>.json` into; unset means "do not emit".
pub const BENCH_DIR_ENV: &str = "SGF_BENCH_DIR";

/// Environment variable overriding the commit id recorded in documents
/// (useful when the working tree is not a git checkout).
pub const COMMIT_ENV: &str = "SGF_BENCH_COMMIT";

/// One measured configuration within a series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchPoint {
    /// Point label, unique within the series (e.g. `"total"`, `"w04"`).
    pub label: String,
    /// Deterministic integer measurements, gated by [`compare`].
    pub counters: BTreeMap<String, u64>,
    /// Time-domain measurements, gated only with `gate_time`.
    pub values: BTreeMap<String, f64>,
    /// Whether the counters of this point are racy by construction
    /// (multi-worker runs); noisy points are exempt from gating.
    pub noisy: bool,
}

impl BenchPoint {
    /// An empty point with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        BenchPoint {
            label: label.into(),
            ..BenchPoint::default()
        }
    }

    /// Add a deterministic counter.
    pub fn counter(mut self, name: &str, value: u64) -> Self {
        self.counters.insert(name.to_string(), value);
        self
    }

    /// Add a time-domain value.
    pub fn value(mut self, name: &str, value: f64) -> Self {
        self.values.insert(name.to_string(), value);
        self
    }

    /// Mark the point's counters as racy (exempt from gating).
    pub fn noisy(mut self) -> Self {
        self.noisy = true;
        self
    }

    fn as_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("label".to_string(), Json::from(self.label.as_str()));
        let mut counters = BTreeMap::new();
        for (name, value) in &self.counters {
            counters.insert(name.clone(), Json::from(*value));
        }
        obj.insert("counters".to_string(), Json::Obj(counters));
        let mut values = BTreeMap::new();
        for (name, value) in &self.values {
            values.insert(name.clone(), Json::from(*value));
        }
        obj.insert("values".to_string(), Json::Obj(values));
        obj.insert("noisy".to_string(), Json::Bool(self.noisy));
        Json::Obj(obj)
    }

    fn from_json(doc: &Json) -> Result<BenchPoint, String> {
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .ok_or("point is missing a string `label`")?
            .to_string();
        let mut point = BenchPoint::new(label);
        if let Some(counters) = doc.get("counters").and_then(Json::as_obj) {
            for (name, value) in counters {
                let value = value
                    .as_u64()
                    .ok_or_else(|| format!("counter `{name}` is not a u64"))?;
                point.counters.insert(name.clone(), value);
            }
        }
        if let Some(values) = doc.get("values").and_then(Json::as_obj) {
            for (name, value) in values {
                let value = value
                    .as_f64()
                    .ok_or_else(|| format!("value `{name}` is not a number"))?;
                point.values.insert(name.clone(), value);
            }
        }
        point.noisy = doc.get("noisy").and_then(Json::as_bool).unwrap_or(false);
        Ok(point)
    }
}

/// One benchmark series: an ordered list of labelled points plus the run
/// provenance (commit, smoke flag, scale).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Series name; the document file is `BENCH_<series>.json`.
    pub series: String,
    /// Commit id of the measured tree (see [`commit_id`]).
    pub commit: String,
    /// Whether the run was in smoke mode (`SGF_SMOKE=1`).
    pub smoke: bool,
    /// The scale factor the binaries ran at.
    pub scale: usize,
    /// The measured points, in sweep order.
    pub points: Vec<BenchPoint>,
}

impl BenchDoc {
    /// An empty document for `series` with the current run's provenance.
    pub fn new(series: impl Into<String>, scale: usize) -> Self {
        BenchDoc {
            series: series.into(),
            commit: commit_id(),
            smoke: crate::smoke_mode(),
            scale,
            points: Vec::new(),
        }
    }

    /// The point with the given label, if present.
    pub fn point(&self, label: &str) -> Option<&BenchPoint> {
        self.points.iter().find(|p| p.label == label)
    }

    /// The document as a [`Json`] value.
    pub fn as_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert(
            "schema_version".to_string(),
            Json::Int(SCHEMA_VERSION.into()),
        );
        obj.insert("series".to_string(), Json::from(self.series.as_str()));
        obj.insert("commit".to_string(), Json::from(self.commit.as_str()));
        obj.insert("smoke".to_string(), Json::Bool(self.smoke));
        obj.insert("scale".to_string(), Json::from(self.scale as u64));
        obj.insert(
            "points".to_string(),
            Json::Arr(self.points.iter().map(BenchPoint::as_json).collect()),
        );
        Json::Obj(obj)
    }

    /// Render the document as canonical JSON text.
    pub fn to_json(&self) -> String {
        self.as_json().render()
    }

    /// Parse a document from an already-parsed [`Json`] value.
    pub fn from_json_value(doc: &Json) -> Result<BenchDoc, String> {
        let series = doc
            .get("series")
            .and_then(Json::as_str)
            .ok_or("document is missing a string `series`")?
            .to_string();
        let commit = doc
            .get("commit")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let smoke = doc.get("smoke").and_then(Json::as_bool).unwrap_or(false);
        let scale = doc
            .get("scale")
            .and_then(Json::as_u64)
            .ok_or("document is missing a numeric `scale`")? as usize;
        let mut points = Vec::new();
        for point in doc.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
            points
                .push(BenchPoint::from_json(point).map_err(|e| format!("series `{series}`: {e}"))?);
        }
        Ok(BenchDoc {
            series,
            commit,
            smoke,
            scale,
            points,
        })
    }

    /// Parse a document from JSON text.
    pub fn from_json(text: &str) -> Result<BenchDoc, String> {
        let doc = sgf_metrics::json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json_value(&doc)
    }

    /// The file name this document is written under.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.series)
    }

    /// Write the document into `dir` as `BENCH_<series>.json`.
    pub fn write_into(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, format!("{}\n", self.to_json()))?;
        Ok(path)
    }
}

/// The commit id recorded in benchmark documents: `$SGF_BENCH_COMMIT` if set,
/// else `git rev-parse --short HEAD`, else `"unknown"`.
pub fn commit_id() -> String {
    if let Ok(commit) = std::env::var(COMMIT_ENV) {
        if !commit.is_empty() {
            return commit;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The emission directory (`$SGF_BENCH_DIR`), if benchmark emission is on.
pub fn bench_dir() -> Option<PathBuf> {
    std::env::var(BENCH_DIR_ENV)
        .ok()
        .filter(|dir| !dir.is_empty())
        .map(PathBuf::from)
}

/// Records one benchmark series around a binary's run: wall clock from
/// construction to [`finish`](SeriesRecorder::finish), plus the delta of the
/// instrumented `core.*` counters (flushed by sgf-core's mechanism loop into
/// the global [`sgf_metrics`] registry) as the `total` point.
pub struct SeriesRecorder {
    doc: BenchDoc,
    start: Instant,
    before: Snapshot,
}

/// The deterministic mechanism counters the `total` point mirrors (names
/// without the `core.mechanism.` prefix).
const MECHANISM_COUNTERS: [&str; 8] = [
    "candidates",
    "released",
    "records_examined",
    "index_tests",
    "scan_tests",
    "partition_tests",
    "class_cache_hits",
    "class_cache_misses",
];

impl SeriesRecorder {
    /// Start recording the series.
    pub fn new(series: impl Into<String>, scale: usize) -> Self {
        SeriesRecorder {
            doc: BenchDoc::new(series, scale),
            start: Instant::now(),
            before: sgf_metrics::global().snapshot(),
        }
    }

    /// Append an explicit point (sweep configurations etc.).
    pub fn add(&mut self, point: BenchPoint) {
        self.doc.points.push(point);
    }

    /// Finish the series: append the `total` point (wall clock + the run's
    /// `core.mechanism.*` counter deltas), emit `BENCH_<series>.json` into
    /// `$SGF_BENCH_DIR` when set, and return the document.
    pub fn finish(mut self) -> BenchDoc {
        let delta = sgf_metrics::global().snapshot().delta(&self.before);
        let mut total =
            BenchPoint::new("total").value("wall_seconds", self.start.elapsed().as_secs_f64());
        for name in MECHANISM_COUNTERS {
            let value = delta.counter(&format!("core.mechanism.{name}"));
            if value > 0 {
                total.counters.insert(name.to_string(), value);
            }
        }
        for (name, stats) in &delta.timers {
            if stats.count > 0 {
                total.values.insert(
                    format!("{}_seconds", name.replace('.', "_")),
                    stats.total_nanos as f64 / 1e9,
                );
            }
        }
        self.doc.points.push(total);
        if let Some(dir) = bench_dir() {
            match self.doc.write_into(&dir) {
                Ok(path) => eprintln!("[bench-track] wrote {}", path.display()),
                Err(err) => eprintln!(
                    "[bench-track] WARNING: could not write {}: {err}",
                    dir.join(self.doc.file_name()).display()
                ),
            }
        }
        self.doc
    }
}

/// One appended line of the trajectory file: a full run's series, keyed by
/// name, plus the run provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// Commit id of the recorded run.
    pub commit: String,
    /// Whether the run was in smoke mode.
    pub smoke: bool,
    /// The scale factor of the run.
    pub scale: usize,
    /// Every series of the run, keyed by series name.
    pub series: BTreeMap<String, BenchDoc>,
}

impl TrajectoryEntry {
    /// Bundle a run's documents into one trajectory entry.  Provenance is
    /// taken from the first document (all documents of one run share it).
    pub fn from_docs(docs: Vec<BenchDoc>) -> Result<TrajectoryEntry, String> {
        let first = docs
            .first()
            .ok_or("a trajectory entry needs at least one series")?;
        let (commit, smoke, scale) = (first.commit.clone(), first.smoke, first.scale);
        let mut series = BTreeMap::new();
        for doc in docs {
            if doc.smoke != smoke || doc.scale != scale {
                return Err(format!(
                    "series `{}` was run at (smoke {}, scale {}) but the entry is (smoke {}, scale {})",
                    doc.series, doc.smoke, doc.scale, smoke, scale
                ));
            }
            series.insert(doc.series.clone(), doc);
        }
        Ok(TrajectoryEntry {
            commit,
            smoke,
            scale,
            series,
        })
    }

    /// The entry as one line of canonical JSON.
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert(
            "schema_version".to_string(),
            Json::Int(SCHEMA_VERSION.into()),
        );
        obj.insert("commit".to_string(), Json::from(self.commit.as_str()));
        obj.insert("smoke".to_string(), Json::Bool(self.smoke));
        obj.insert("scale".to_string(), Json::from(self.scale as u64));
        let mut series = BTreeMap::new();
        for (name, doc) in &self.series {
            series.insert(name.clone(), doc.as_json());
        }
        obj.insert("series".to_string(), Json::Obj(series));
        Json::Obj(obj).render()
    }

    /// Parse one trajectory line.
    pub fn from_json(text: &str) -> Result<TrajectoryEntry, String> {
        let doc = sgf_metrics::json::parse(text).map_err(|e| e.to_string())?;
        let commit = doc
            .get("commit")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let smoke = doc.get("smoke").and_then(Json::as_bool).unwrap_or(false);
        let scale = doc
            .get("scale")
            .and_then(Json::as_u64)
            .ok_or("trajectory entry is missing a numeric `scale`")? as usize;
        let mut series = BTreeMap::new();
        if let Some(map) = doc.get("series").and_then(Json::as_obj) {
            for (name, value) in map {
                series.insert(name.clone(), BenchDoc::from_json_value(value)?);
            }
        }
        Ok(TrajectoryEntry {
            commit,
            smoke,
            scale,
            series,
        })
    }
}

/// Read every entry of a trajectory file (empty if the file does not exist).
pub fn read_trajectory(path: &Path) -> Result<Vec<TrajectoryEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(format!("cannot read {}: {err}", path.display())),
    };
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        entries.push(
            TrajectoryEntry::from_json(line)
                .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?,
        );
    }
    Ok(entries)
}

/// Append one entry to a trajectory file (created if absent).
pub fn append_trajectory(path: &Path, entry: &TrajectoryEntry) -> Result<(), String> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    writeln!(file, "{}", entry.to_json())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// The last trajectory entry recorded at the same (smoke, scale) — the
/// baseline a new run is compared against.
pub fn find_baseline(
    entries: &[TrajectoryEntry],
    smoke: bool,
    scale: usize,
) -> Option<&TrajectoryEntry> {
    entries
        .iter()
        .rev()
        .find(|e| e.smoke == smoke && e.scale == scale)
}

/// One gated deviation found by [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Series the deviation is in.
    pub series: String,
    /// Point label within the series.
    pub point: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// What the deviation means.
    pub kind: RegressionKind,
}

/// Classification of a gated deviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressionKind {
    /// A deterministic counter moved in either direction: the decision path
    /// changed (or the baseline is stale).
    CounterDrift,
    /// A time-domain value regressed (more seconds / less throughput).
    TimeRegression,
    /// A series or point present in the baseline is missing from the run.
    Missing,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            RegressionKind::Missing => write!(
                f,
                "{}/{}: `{}` present in the baseline is missing from this run",
                self.series, self.point, self.metric
            ),
            RegressionKind::CounterDrift => write!(
                f,
                "{}/{}: counter `{}` drifted from {} to {} ({:+.1}%)",
                self.series,
                self.point,
                self.metric,
                self.baseline,
                self.current,
                relative_change(self.baseline, self.current) * 100.0
            ),
            RegressionKind::TimeRegression => write!(
                f,
                "{}/{}: `{}` regressed from {} to {} ({:+.1}%)",
                self.series,
                self.point,
                self.metric,
                self.baseline,
                self.current,
                relative_change(self.baseline, self.current) * 100.0
            ),
        }
    }
}

fn relative_change(baseline: f64, current: f64) -> f64 {
    (current - baseline) / baseline.abs().max(1e-12)
}

/// Compare a run's documents against a baseline trajectory entry.
///
/// * Deterministic counters of non-noisy points are gated in **both**
///   directions with the relative `tolerance` band.
/// * Time-domain values gate only when `gate_time` is set, directionally:
///   `*_seconds` may not increase past the band, `throughput*` may not
///   decrease past it.
/// * A baseline series or point (or gated metric) missing from the run is a
///   regression; series/points *new* in the run are fine (growth).
pub fn compare(
    docs: &[BenchDoc],
    baseline: &TrajectoryEntry,
    tolerance: f64,
    gate_time: bool,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let by_name: BTreeMap<&str, &BenchDoc> = docs.iter().map(|d| (d.series.as_str(), d)).collect();
    for (name, base_doc) in &baseline.series {
        let Some(doc) = by_name.get(name.as_str()) else {
            regressions.push(Regression {
                series: name.clone(),
                point: "-".to_string(),
                metric: "-".to_string(),
                baseline: 0.0,
                current: 0.0,
                kind: RegressionKind::Missing,
            });
            continue;
        };
        for base_point in &base_doc.points {
            let Some(point) = doc.point(&base_point.label) else {
                regressions.push(Regression {
                    series: name.clone(),
                    point: base_point.label.clone(),
                    metric: "-".to_string(),
                    baseline: 0.0,
                    current: 0.0,
                    kind: RegressionKind::Missing,
                });
                continue;
            };
            if base_point.noisy || point.noisy {
                continue;
            }
            for (metric, &base_value) in &base_point.counters {
                match point.counters.get(metric) {
                    None => regressions.push(Regression {
                        series: name.clone(),
                        point: base_point.label.clone(),
                        metric: metric.clone(),
                        baseline: base_value as f64,
                        current: 0.0,
                        kind: RegressionKind::Missing,
                    }),
                    Some(&value) => {
                        let change = relative_change(base_value as f64, value as f64);
                        if change.abs() > tolerance {
                            regressions.push(Regression {
                                series: name.clone(),
                                point: base_point.label.clone(),
                                metric: metric.clone(),
                                baseline: base_value as f64,
                                current: value as f64,
                                kind: RegressionKind::CounterDrift,
                            });
                        }
                    }
                }
            }
            if gate_time {
                for (metric, &base_value) in &base_point.values {
                    let Some(&value) = point.values.get(metric) else {
                        continue;
                    };
                    let change = relative_change(base_value, value);
                    let regressed = if metric.ends_with("_seconds") {
                        change > tolerance
                    } else if metric.starts_with("throughput") {
                        change < -tolerance
                    } else {
                        false
                    };
                    if regressed {
                        regressions.push(Regression {
                            series: name.clone(),
                            point: base_point.label.clone(),
                            metric: metric.clone(),
                            baseline: base_value,
                            current: value,
                            kind: RegressionKind::TimeRegression,
                        });
                    }
                }
            }
        }
    }
    regressions
}

/// Read every `BENCH_*.json` document in a directory, sorted by series name.
pub fn read_docs(dir: &Path) -> Result<Vec<BenchDoc>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut docs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let path = entry.path();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        docs.push(BenchDoc::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    docs.sort_by(|a, b| a.series.cmp(&b.series));
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(series: &str, released: u64, seconds: f64) -> BenchDoc {
        BenchDoc {
            series: series.to_string(),
            commit: "deadbee".to_string(),
            smoke: true,
            scale: 1,
            points: vec![BenchPoint::new("total")
                .counter("released", released)
                .value("wall_seconds", seconds)],
        }
    }

    #[test]
    fn documents_round_trip_through_json() {
        let mut d = doc("fig9", 123, 4.5);
        d.points.push(
            BenchPoint::new("w04")
                .counter("workers", 4)
                .value("throughput_rps", 81.25)
                .noisy(),
        );
        let text = d.to_json();
        let parsed = BenchDoc::from_json(&text).unwrap();
        assert_eq!(parsed, d);
        assert_eq!(parsed.to_json(), text);
        assert!(parsed.point("w04").unwrap().noisy);
    }

    #[test]
    fn trajectory_entries_round_trip() {
        let entry = TrajectoryEntry::from_docs(vec![doc("a", 10, 1.0), doc("b", 20, 2.0)]).unwrap();
        let line = entry.to_json();
        assert!(!line.contains('\n'));
        let parsed = TrajectoryEntry::from_json(&line).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn mixed_provenance_entries_are_rejected() {
        let mut other = doc("b", 20, 2.0);
        other.scale = 4;
        assert!(TrajectoryEntry::from_docs(vec![doc("a", 10, 1.0), other]).is_err());
    }

    #[test]
    fn baseline_is_the_last_matching_entry() {
        let older = TrajectoryEntry::from_docs(vec![doc("a", 10, 1.0)]).unwrap();
        let mut newer = TrajectoryEntry::from_docs(vec![doc("a", 11, 1.0)]).unwrap();
        newer.commit = "newer00".to_string();
        let mut full_scale = TrajectoryEntry::from_docs(vec![doc("a", 99, 9.0)]).unwrap();
        full_scale.smoke = false;
        let entries = vec![older, newer.clone(), full_scale];
        assert_eq!(find_baseline(&entries, true, 1), Some(&newer));
        assert!(find_baseline(&entries, true, 2).is_none());
    }

    #[test]
    fn counter_drift_is_gated_in_both_directions() {
        let baseline = TrajectoryEntry::from_docs(vec![doc("a", 100, 1.0)]).unwrap();
        assert!(compare(&[doc("a", 100, 9.0)], &baseline, 0.05, false).is_empty());
        assert!(compare(&[doc("a", 104, 1.0)], &baseline, 0.05, false).is_empty());
        let up = compare(&[doc("a", 120, 1.0)], &baseline, 0.05, false);
        assert_eq!(up.len(), 1);
        assert_eq!(up[0].kind, RegressionKind::CounterDrift);
        let down = compare(&[doc("a", 80, 1.0)], &baseline, 0.05, false);
        assert_eq!(down.len(), 1);
    }

    #[test]
    fn time_gating_is_directional_and_opt_in() {
        let baseline = TrajectoryEntry::from_docs(vec![doc("a", 100, 1.0)]).unwrap();
        // 3x slower: invisible without gate_time, a regression with it.
        assert!(compare(&[doc("a", 100, 3.0)], &baseline, 0.10, false).is_empty());
        let slow = compare(&[doc("a", 100, 3.0)], &baseline, 0.10, true);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].kind, RegressionKind::TimeRegression);
        // Faster is never a regression.
        assert!(compare(&[doc("a", 100, 0.2)], &baseline, 0.10, true).is_empty());
        // Throughput gates the opposite direction.
        let mk = |rps: f64| BenchDoc {
            points: vec![BenchPoint::new("total").value("throughput_rps", rps)],
            ..doc("t", 0, 0.0)
        };
        let base = TrajectoryEntry::from_docs(vec![mk(100.0)]).unwrap();
        assert!(compare(&[mk(150.0)], &base, 0.10, true).is_empty());
        assert_eq!(compare(&[mk(50.0)], &base, 0.10, true).len(), 1);
    }

    #[test]
    fn noisy_points_and_new_points_are_exempt() {
        let mut base_doc = doc("a", 100, 1.0);
        base_doc
            .points
            .push(BenchPoint::new("w08").counter("candidates", 500).noisy());
        let baseline = TrajectoryEntry::from_docs(vec![base_doc]).unwrap();
        let mut current = doc("a", 100, 1.0);
        current
            .points
            .push(BenchPoint::new("w08").counter("candidates", 9_999).noisy());
        current
            .points
            .push(BenchPoint::new("brand_new").counter("x", 1));
        assert!(compare(&[current], &baseline, 0.05, false).is_empty());
    }

    #[test]
    fn missing_series_points_and_metrics_are_regressions() {
        let mut base_doc = doc("a", 100, 1.0);
        base_doc
            .points
            .push(BenchPoint::new("extra").counter("c", 5));
        let baseline = TrajectoryEntry::from_docs(vec![base_doc, doc("gone", 1, 1.0)]).unwrap();
        // Run is missing series `gone`, point `extra`, and counter `released`.
        let mut current = doc("a", 100, 1.0);
        current.points[0].counters.clear();
        let regressions = compare(&[current], &baseline, 0.05, false);
        assert_eq!(regressions.len(), 3);
        assert!(regressions
            .iter()
            .all(|r| r.kind == RegressionKind::Missing));
    }

    #[test]
    fn trajectory_file_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("sgf_track_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_TRAJECTORY.jsonl");
        let _ = std::fs::remove_file(&path);
        assert!(read_trajectory(&path).unwrap().is_empty());
        let entry = TrajectoryEntry::from_docs(vec![doc("a", 10, 1.0)]).unwrap();
        append_trajectory(&path, &entry).unwrap();
        append_trajectory(&path, &entry).unwrap();
        let entries = read_trajectory(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], entry);
        let docs_dir = dir.join("docs");
        let written = doc("a", 10, 1.0).write_into(&docs_dir).unwrap();
        assert!(written.ends_with("BENCH_a.json"));
        let docs = read_docs(&docs_dir).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].series, "a");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
