//! End-to-end tests of the `sgf-bench-track` gate: a regression injected into
//! the emitted documents must flip the `compare` exit code to nonzero, and a
//! clean run must pass.

use bench::track::{append_trajectory, BenchDoc, BenchPoint, TrajectoryEntry};
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_sgf-bench-track");

/// A fresh scratch directory under the target dir, unique per test.
fn scratch(test: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn doc(released: u64) -> BenchDoc {
    BenchDoc {
        series: "fig_test".to_string(),
        commit: "abc1234".to_string(),
        smoke: true,
        scale: 1,
        points: vec![BenchPoint::new("total")
            .counter("released", released)
            .counter("candidates", released * 3)
            .value("wall_seconds", 1.5)],
    }
}

/// Write a run's documents and a baseline trajectory, then run `compare`.
fn run_compare(
    dir: &Path,
    current: &BenchDoc,
    baseline: &BenchDoc,
    extra: &[&str],
) -> (i32, String) {
    let docs_dir = dir.join("docs");
    current.write_into(&docs_dir).unwrap();
    let trajectory = dir.join("BENCH_TRAJECTORY.jsonl");
    let entry = TrajectoryEntry::from_docs(vec![baseline.clone()]).unwrap();
    append_trajectory(&trajectory, &entry).unwrap();
    let output = Command::new(BIN)
        .arg("compare")
        .arg("--dir")
        .arg(&docs_dir)
        .arg("--trajectory")
        .arg(&trajectory)
        .args(extra)
        .output()
        .expect("sgf-bench-track runs");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    (output.status.code().expect("exit code"), stdout)
}

#[test]
fn injected_counter_regression_fails_the_gate() {
    let dir = scratch("injected_counter_regression");
    // Baseline released 100; the run releases 80 — 20% drift, far outside
    // the default 5% band.
    let (code, stdout) = run_compare(&dir, &doc(80), &doc(100), &[]);
    assert_eq!(
        code, 1,
        "compare must exit 1 on regression, output:\n{stdout}"
    );
    assert!(stdout.contains("REGRESSION"), "output:\n{stdout}");
    assert!(stdout.contains("released"), "output:\n{stdout}");
}

#[test]
fn identical_run_passes_the_gate() {
    let dir = scratch("identical_run_passes");
    let (code, stdout) = run_compare(&dir, &doc(100), &doc(100), &[]);
    assert_eq!(code, 0, "output:\n{stdout}");
    assert!(stdout.contains("no regressions"), "output:\n{stdout}");
}

#[test]
fn tolerance_band_is_configurable() {
    let dir = scratch("tolerance_band");
    // 10% drift: outside the default 5% band, inside a 25% band.
    let (code, _) = run_compare(&dir, &doc(110), &doc(100), &[]);
    assert_eq!(code, 1);
    let dir = scratch("tolerance_band_wide");
    let (code, stdout) = run_compare(&dir, &doc(110), &doc(100), &["--tolerance", "0.25"]);
    assert_eq!(code, 0, "output:\n{stdout}");
}

#[test]
fn time_regressions_gate_only_on_request() {
    let mut slow = doc(100);
    slow.points[0]
        .values
        .insert("wall_seconds".to_string(), 40.0);
    let dir = scratch("time_not_gated");
    let (code, _) = run_compare(&dir, &slow, &doc(100), &[]);
    assert_eq!(code, 0, "time must not gate by default");
    let dir = scratch("time_gated");
    let (code, stdout) = run_compare(&dir, &slow, &doc(100), &["--gate-time"]);
    assert_eq!(code, 1, "output:\n{stdout}");
    assert!(stdout.contains("wall_seconds"), "output:\n{stdout}");
}

#[test]
fn missing_baseline_is_not_a_failure() {
    let dir = scratch("missing_baseline");
    let docs_dir = dir.join("docs");
    doc(100).write_into(&docs_dir).unwrap();
    let output = Command::new(BIN)
        .arg("compare")
        .arg("--dir")
        .arg(&docs_dir)
        .arg("--trajectory")
        .arg(dir.join("BENCH_TRAJECTORY.jsonl"))
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&output.stdout).contains("no baseline"));
}

#[test]
fn append_records_a_new_baseline_that_compare_accepts() {
    let dir = scratch("append_then_compare");
    let docs_dir = dir.join("docs");
    doc(100).write_into(&docs_dir).unwrap();
    let trajectory = dir.join("BENCH_TRAJECTORY.jsonl");
    let status = Command::new(BIN)
        .arg("append")
        .arg("--dir")
        .arg(&docs_dir)
        .arg("--trajectory")
        .arg(&trajectory)
        .status()
        .unwrap();
    assert!(status.success());
    let output = Command::new(BIN)
        .arg("compare")
        .arg("--dir")
        .arg(&docs_dir)
        .arg("--trajectory")
        .arg(&trajectory)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&output.stdout).contains("no regressions"));
}

#[test]
fn notes_renders_tables_from_the_documents() {
    let dir = scratch("notes_renders");
    let docs_dir = dir.join("docs");
    let mut d = doc(100);
    d.points.push(
        BenchPoint::new("w04")
            .counter("workers", 4)
            .value("throughput_rps", 123.0)
            .noisy(),
    );
    d.write_into(&docs_dir).unwrap();
    let out = dir.join("NOTES.md");
    let output = Command::new(BIN)
        .arg("notes")
        .arg("--dir")
        .arg(&docs_dir)
        .arg("--out")
        .arg(&out)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0));
    let notes = std::fs::read_to_string(&out).unwrap();
    assert!(notes.contains("Generated by `sgf-bench-track notes`"));
    assert!(notes.contains("| fig_test | 1.5 | 100 | 300 |"));
    assert!(notes.contains("`fig_test` sweep"));
    assert!(notes.contains("w04"));
    assert!(notes.contains("noisy point"));
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &[] as &[&str],
        &["frobnicate"],
        &["compare", "--tolerance", "lots"],
    ] {
        let output = Command::new(BIN).args(args).output().unwrap();
        assert_eq!(output.status.code(), Some(2), "args {args:?}");
    }
}
