//! Criterion bench: the deterministic and randomized privacy tests
//! (supports Figure 6's pass-rate sweep and the Section 5 early-termination knobs).

use bench::small_models;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_core::{run_privacy_test, PrivacyTestConfig};
use sgf_model::{GenerativeModel, SeedSynthesizer};
use std::sync::Arc;

fn bench_privacy_test(c: &mut Criterion) {
    let (split, _bkt, models) = small_models(202);
    let synthesizer = SeedSynthesizer::new(Arc::clone(&models.cpts), 9).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let seed = split.seeds.record(0).clone();
    let candidate = synthesizer.generate(&seed, &mut rng);

    let mut group = c.benchmark_group("privacy_test");
    group.sample_size(10);
    for (name, config) in [
        (
            "deterministic_k50",
            PrivacyTestConfig::deterministic(50, 4.0),
        ),
        (
            "randomized_k50",
            PrivacyTestConfig::randomized(50, 4.0, 1.0),
        ),
        (
            "randomized_k50_capped",
            PrivacyTestConfig::randomized(50, 4.0, 1.0).with_limits(Some(100), Some(1_000)),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || StdRng::seed_from_u64(11),
                |mut rng| {
                    run_privacy_test(
                        &synthesizer,
                        &split.seeds,
                        &seed,
                        &candidate,
                        &config,
                        &mut rng,
                    )
                    .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_privacy_test);
criterion_main!(benches);
