//! Criterion bench: the classifiers used by Tables 3-5.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_data::acs::{attr, generate_acs};
use sgf_ml::{
    encode_dataset, AdaBoost, AdaBoostConfig, DecisionTree, Encoding, ForestConfig, LinearConfig,
    LinearModel, RandomForest, TreeConfig,
};

fn bench_classifiers(c: &mut Criterion) {
    let data = generate_acs(2_000, 204);
    let ordinal = encode_dataset(&data, attr::INCOME, Encoding::Ordinal);
    let onehot = encode_dataset(
        &data,
        attr::INCOME,
        Encoding::OneHotNormalized { unit_norm: true },
    );

    let mut group = c.benchmark_group("classifiers");
    group.sample_size(10);
    group.bench_function("decision_tree", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            DecisionTree::fit(&ordinal, &TreeConfig::default(), &mut rng)
        })
    });
    group.bench_function("random_forest_10", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            RandomForest::fit(
                &ordinal,
                &ForestConfig {
                    trees: 10,
                    ..ForestConfig::default()
                },
                &mut rng,
            )
        })
    });
    group.bench_function("adaboost_10", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            AdaBoost::fit(
                &ordinal,
                &AdaBoostConfig {
                    rounds: 10,
                    ..AdaBoostConfig::default()
                },
                &mut rng,
            )
        })
    });
    group.bench_function("logistic_regression", |b| {
        b.iter(|| {
            LinearModel::fit(
                &onehot,
                &LinearConfig {
                    iterations: 100,
                    ..LinearConfig::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);
