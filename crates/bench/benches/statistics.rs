//! Criterion bench: the statistics substrate (entropy, correlations, TVD).

use criterion::{criterion_group, criterion_main, Criterion};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_model::correlation_matrix;
use sgf_stats::{attribute_distances, entropy, pairwise_distances, Histogram};

fn bench_statistics(c: &mut Criterion) {
    let a = generate_acs(5_000, 205);
    let b = generate_acs(5_000, 206);
    let bkt = acs_bucketizer(&acs_schema());

    let mut group = c.benchmark_group("statistics");
    group.sample_size(10);
    group.bench_function("entropy_per_attribute", |bencher| {
        bencher.iter(|| {
            (0..a.schema().len())
                .map(|attr| entropy(&Histogram::from_column(&a, attr)))
                .sum::<f64>()
        })
    });
    group.bench_function("correlation_matrix", |bencher| {
        bencher.iter(|| correlation_matrix(&a, &bkt).unwrap())
    });
    group.bench_function("attribute_distances", |bencher| {
        bencher.iter(|| attribute_distances(&a, &b))
    });
    group.bench_function("pairwise_distances", |bencher| {
        bencher.iter(|| pairwise_distances(&a, &b))
    });
    group.finish();
}

criterion_group!(benches, bench_statistics);
criterion_main!(benches);
