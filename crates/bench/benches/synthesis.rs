//! Criterion bench: candidate generation and release throughput of
//! Mechanism 1 (supports Figure 5's synthesis-time curve).

use bench::small_models;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_core::{Mechanism, PrivacyTestConfig};
use sgf_model::SeedSynthesizer;
use std::sync::Arc;

fn bench_synthesis(c: &mut Criterion) {
    let (split, _bkt, models) = small_models(201);
    let synthesizer = SeedSynthesizer::new(Arc::clone(&models.cpts), 9).unwrap();
    let test = PrivacyTestConfig::randomized(50, 4.0, 1.0).with_limits(Some(100), Some(2_000));
    let mechanism = Mechanism::new(&synthesizer, &split.seeds, test).unwrap();

    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.bench_function("propose_one_candidate", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| mechanism.propose(&mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("release_batch_of_20", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(8),
            |mut rng| mechanism.release_batch(20, &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
