//! Criterion bench: ablations called out in DESIGN.md — deterministic vs
//! randomized privacy tests, omega sensitivity, and maxcost sensitivity.

use bench::small_models;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_core::{Mechanism, PrivacyTestConfig};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_model::{learn_dependency_structure, SeedSynthesizer, StructureConfig};
use std::sync::Arc;

fn bench_ablations(c: &mut Criterion) {
    let (split, _bkt, models) = small_models(207);

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // Omega ablation: seed-closeness vs synthesis cost.
    for omega in [5usize, 9, 11] {
        let synthesizer = SeedSynthesizer::new(Arc::clone(&models.cpts), omega).unwrap();
        let test = PrivacyTestConfig::deterministic(50, 4.0).with_limits(Some(100), Some(2_000));
        let mechanism = Mechanism::new(&synthesizer, &split.seeds, test).unwrap();
        group.bench_function(format!("propose_omega_{omega}"), |b| {
            b.iter_batched(
                || StdRng::seed_from_u64(5),
                |mut rng| mechanism.propose(&mut rng).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    // Deterministic vs randomized test ablation.
    let synthesizer = SeedSynthesizer::new(Arc::clone(&models.cpts), 9).unwrap();
    for (name, test) in [
        (
            "deterministic_test",
            PrivacyTestConfig::deterministic(50, 4.0).with_limits(Some(100), Some(2_000)),
        ),
        (
            "randomized_test",
            PrivacyTestConfig::randomized(50, 4.0, 1.0).with_limits(Some(100), Some(2_000)),
        ),
    ] {
        let mechanism = Mechanism::new(&synthesizer, &split.seeds, test).unwrap();
        group.bench_function(name, |b| {
            b.iter_batched(
                || StdRng::seed_from_u64(6),
                |mut rng| mechanism.propose(&mut rng).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    // maxcost ablation for structure learning.
    let data = generate_acs(2_000, 208);
    let bkt = acs_bucketizer(&acs_schema());
    for maxcost in [30u64, 300, 3_000] {
        let mut config = StructureConfig::exact();
        config.cfs.maxcost = maxcost;
        group.bench_function(format!("structure_maxcost_{maxcost}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                learn_dependency_structure(&data, &bkt, &config, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
