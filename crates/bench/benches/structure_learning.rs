//! Criterion bench: structure learning (exact vs differentially private) and
//! parameter learning (supports Figure 5's "model learning" phase).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_model::{learn_dependency_structure, CptStore, ParameterConfig, StructureConfig};

fn bench_learning(c: &mut Criterion) {
    let data = generate_acs(3_000, 203);
    let bkt = acs_bucketizer(&acs_schema());

    let mut group = c.benchmark_group("model_learning");
    group.sample_size(10);
    group.bench_function("structure_exact", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            learn_dependency_structure(&data, &bkt, &StructureConfig::exact(), &mut rng).unwrap()
        })
    });
    group.bench_function("structure_private_eps1", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            learn_dependency_structure(&data, &bkt, &StructureConfig::private(0.05, 0.01), &mut rng)
                .unwrap()
        })
    });
    let mut rng = StdRng::seed_from_u64(3);
    let structure =
        learn_dependency_structure(&data, &bkt, &StructureConfig::exact(), &mut rng).unwrap();
    group.bench_function("parameters_exact", |b| {
        b.iter(|| {
            CptStore::learn(&data, &bkt, &structure.graph, ParameterConfig::default()).unwrap()
        })
    });
    group.bench_function("parameters_private", |b| {
        b.iter(|| {
            CptStore::learn(
                &data,
                &bkt,
                &structure.graph,
                ParameterConfig {
                    epsilon_p: Some(1.0),
                    ..ParameterConfig::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_learning);
criterion_main!(benches);
