//! sgf-lint: a std-only static-analysis pass that mechanizes the workspace's
//! determinism & robustness invariants.
//!
//! Every guarantee this reproduction makes — the Theorem-1 (ε, δ)
//! accounting, and the CI-gated claim that the scan / inverted / partition
//! seed stores are *byte-identical* in decisions, counts, and RNG streams —
//! rests on code invariants no compiler checks: no NaN-unsound comparators
//! on decision paths (R1), no randomized-order collections in decision-path
//! modules (R2), no panics in the serve request loop (R3), no unaudited RNG
//! draw sites (R4), no silently lossy casts in the privacy accounting (R5).
//!
//! The engine walks every `.rs` file under the workspace root, lexes it
//! ([`lexer`]), runs the policy-scoped rule catalog ([`rules`]) over the
//! token stream, and filters findings through the justification-required
//! allowlist in the checked-in `lint.toml` ([`policy`]).  Unused allowlist
//! entries and stale R4 audit entries are themselves errors, so the
//! exception lists can only shrink as the code gets cleaner.
//!
//! Run it as `cargo run -p sgf-lint` from the workspace root; see
//! `--explain <rule>` for the rationale behind each rule.

pub mod diagnostics;
pub mod lexer;
pub mod policy;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use diagnostics::{Allowed, Report};
use policy::{path_matches, Policy, PolicyError};
use rules::Finding;

/// A fatal engine problem (I/O, bad policy, stale exception lists) —
/// distinct from lint findings, and mapped to a distinct exit code.
#[derive(Debug)]
pub struct EngineError(pub String);

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for EngineError {}

impl From<PolicyError> for EngineError {
    fn from(e: PolicyError) -> Self {
        EngineError(e.to_string())
    }
}

/// Load and validate the policy file at `config`.
pub fn load_policy(config: &Path) -> Result<Policy, EngineError> {
    let text = fs::read_to_string(config)
        .map_err(|e| EngineError(format!("cannot read {}: {e}", config.display())))?;
    Ok(Policy::parse(&text)?)
}

/// Run the full pass over the tree rooted at `root`.
///
/// `paths`, when non-empty, restricts checking to files whose root-relative
/// path starts with one of the given prefixes.  Staleness checks (unused
/// `[[allow]]` entries, unhit R4 audit entries) only run on unrestricted
/// passes — a partial run cannot know an entry is dead.
pub fn run(root: &Path, policy: &Policy, paths: &[String]) -> Result<Report, EngineError> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &policy.exclude, &mut files)?;
    files.sort(); // deterministic report order regardless of readdir order

    let mut report = Report::default();
    let mut allow_used = vec![false; policy.allows.len()];
    let mut audit_hits: Vec<String> = Vec::new();

    for rel_path in &files {
        if !paths.is_empty() && !paths.iter().any(|p| path_matches(p, rel_path)) {
            continue;
        }
        let full = root.join(rel_path);
        let source = fs::read_to_string(&full)
            .map_err(|e| EngineError(format!("cannot read {}: {e}", full.display())))?;
        let tokens = lexer::lex(&source);
        let lines: Vec<&str> = source.lines().collect();
        let findings = rules::check_file(rel_path, &tokens, &lines, policy, &mut audit_hits);
        report.files_checked += 1;

        for finding in findings {
            match allow_index(policy, &finding) {
                Some(idx) => {
                    allow_used[idx] = true;
                    report.allowed.push(Allowed {
                        justification: policy.allows[idx].justification.clone(),
                        finding,
                    });
                }
                None => report.findings.push(finding),
            }
        }
    }

    if paths.is_empty() {
        // Stale-exception detection: every suppression must still suppress
        // something, every audited RNG site must still exist.
        for (idx, used) in allow_used.iter().enumerate() {
            if !used {
                let entry = &policy.allows[idx];
                return Err(EngineError(format!(
                    "stale [[allow]] entry: {} in {} (pattern `{}`) no longer matches \
                     any finding — remove it from lint.toml",
                    entry.rule, entry.file, entry.pattern
                )));
            }
        }
        let hit: BTreeSet<&str> = audit_hits.iter().map(String::as_str).collect();
        for entry in &policy.rng_audited {
            if !hit.contains(entry.as_str()) {
                return Err(EngineError(format!(
                    "stale R4 audit entry: `{entry}` names no fn taking `&mut` an RNG — \
                     remove it from [rules.R4] audited in lint.toml"
                )));
            }
        }
    }

    Ok(report)
}

/// First allowlist entry suppressing `finding`, if any: the rule must match,
/// the entry's `file` must be the finding's path or a suffix of it, and the
/// entry's `pattern` must appear verbatim on the flagged source line.
fn allow_index(policy: &Policy, finding: &Finding) -> Option<usize> {
    policy.allows.iter().position(|entry| {
        entry.rule == finding.rule
            && file_suffix_matches(&entry.file, &finding.file)
            && finding.snippet.contains(&entry.pattern)
    })
}

fn file_suffix_matches(entry_file: &str, finding_file: &str) -> bool {
    finding_file == entry_file || finding_file.ends_with(&format!("/{entry_file}"))
}

/// Recursively collect root-relative, forward-slash paths of `.rs` files,
/// skipping excluded prefixes, hidden directories, and build output.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<String>,
) -> Result<(), EngineError> {
    let entries = fs::read_dir(dir)
        .map_err(|e| EngineError(format!("cannot read dir {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| EngineError(format!("readdir {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = rel_path(root, &path);
        if exclude.iter().any(|p| path_matches(p, &rel)) {
            continue;
        }
        let kind = entry
            .file_type()
            .map_err(|e| EngineError(format!("stat {}: {e}", path.display())))?;
        if kind.is_dir() {
            collect_rs_files(root, &path, exclude, out)?;
        } else if kind.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, rel: &str, contents: &str) {
        let path = dir.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sgf-lint-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn end_to_end_flags_filters_and_detects_stale_entries() {
        let root = temp_root("e2e");
        write(
            &root,
            "src/a.rs",
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n\
             fn g(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); } // allowed: clamped\n",
        );
        write(
            &root,
            "vendor/skip.rs",
            "fn h() { x.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
        );

        let policy = Policy::parse(
            r#"
            exclude = ["vendor"]
            [rules.R1]
            include = ["src"]
            [[allow]]
            rule = "R1"
            file = "src/a.rs"
            pattern = "// allowed: clamped"
            justification = "test fixture: inputs clamped upstream"
            "#,
        )
        .unwrap();

        let report = run(&root, &policy, &[]).unwrap();
        assert_eq!(report.files_checked, 1, "vendor/ must be excluded");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.findings[0].line, 1);

        // Same tree, an entry matching nothing: the run must fail loudly.
        let stale = Policy::parse(
            r#"
            [rules.R1]
            include = ["src"]
            [[allow]]
            rule = "R1"
            file = "src/a.rs"
            pattern = "no such line"
            justification = "stale"
            "#,
        )
        .unwrap();
        let err = run(&root, &stale, &[]).unwrap_err();
        assert!(err.0.contains("stale [[allow]]"), "{err}");

        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn path_filter_restricts_and_skips_staleness() {
        let root = temp_root("filter");
        write(&root, "src/a.rs", "fn f() { let x: HashMap<u8, u8>; }");
        write(&root, "src/b.rs", "fn g() { let y: HashMap<u8, u8>; }");
        let policy = Policy::parse(
            r#"
            [rules.R2]
            include = ["src"]
            [[allow]]
            rule = "R2"
            file = "src/b.rs"
            pattern = "HashMap"
            justification = "test fixture: never iterated"
            "#,
        )
        .unwrap();
        let partial = run(&root, &policy, &["src/a.rs".to_string()]).unwrap();
        assert_eq!(partial.files_checked, 1);
        assert_eq!(partial.findings.len(), 1);
        // The b.rs allow entry is unused in this partial run — not an error.
        assert!(partial.allowed.is_empty());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stale_r4_audit_entries_fail() {
        let root = temp_root("r4");
        write(&root, "src/a.rs", "fn no_rng_here() {}");
        let policy = Policy::parse(
            r#"
            [rules.R4]
            include = ["src"]
            rng_types = ["Rng"]
            audited = ["src/a.rs::gone"]
            "#,
        )
        .unwrap();
        let err = run(&root, &policy, &[]).unwrap_err();
        assert!(err.0.contains("stale R4 audit entry"), "{err}");
        fs::remove_dir_all(&root).unwrap();
    }
}
