//! A hand-rolled Rust lexer producing a rule-checkable token stream.
//!
//! The rules in [`crate::rules`] are lexical, not syntactic: they need to see
//! identifiers, punctuation, and nesting — and they need to *not* see the
//! insides of comments, string literals, and `#[cfg(test)]` items.  A full
//! parser (`syn`) would be overkill and would break the workspace's
//! vendored-stub policy, so this module lexes just enough Rust:
//!
//! * line (`//`) and nested block (`/* */`) comments are skipped;
//! * string, raw-string (`r#"…"#` with any number of hashes), byte-string,
//!   and char literals become single opaque [`TokenKind::Str`] /
//!   [`TokenKind::Char`] tokens — their contents can never trigger a rule;
//! * lifetimes (`'a`) are distinguished from char literals;
//! * raw identifiers (`r#match`) lex as identifiers;
//! * a post-pass marks every token inside a `#[test]` or `#[cfg(test)]`
//!   item with [`Token::in_test`] so the rules can exclude test code.
//!
//! Every token carries a 1-based `line:col` so diagnostics point at source.

/// The coarse token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (rules match on the text).
    Ident,
    /// A lifetime (`'a`), without the quote in `text`.
    Lifetime,
    /// A numeric literal (integer or float; rules never inspect the digits).
    Number,
    /// A string / raw-string / byte-string literal, contents opaque.
    Str,
    /// A char literal, contents opaque.
    Char,
    /// A single punctuation character (`text` holds exactly one char).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Identifier/lifetime text, or the single punctuation character.
    /// Literals keep only a placeholder (their content is rule-irrelevant).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
    /// Whether the token sits inside a `#[test]` / `#[cfg(test)]` item.
    pub in_test: bool,
}

impl Token {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

/// Lex `source` into a token stream and mark test-only code.
pub fn lex(source: &str) -> Vec<Token> {
    let mut lexer = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        tokens: Vec::new(),
    };
    lexer.run();
    let mut tokens = lexer.tokens;
    mark_test_code(&mut tokens);
    tokens
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, col),
                '\'' => self.quote(line, col),
                'r' | 'b' | 'c' if self.raw_or_byte_literal(line, col) => {}
                c if c == '_' || c.is_alphabetic() => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line, col);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        // Consume `/*`, then balance nested comments.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated; tolerate
            }
        }
    }

    /// A plain (escaped) string literal starting at the current `"`.
    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped character (covers \" and \\)
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, "\"…\"".to_string(), line, col);
    }

    /// Raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`),
    /// C strings (`c"…"`), and raw identifiers (`r#ident`).  Returns `false`
    /// when the current position is a plain identifier starting with
    /// r/b/c — the caller falls through to `ident`.
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> bool {
        let c0 = self.peek();
        let mut ahead = 1usize;
        // Optional second prefix letter: br / rb is not legal but br is.
        if c0 == Some('b') && matches!(self.peek_at(1), Some('r')) {
            ahead = 2;
        }
        match self.peek_at(ahead) {
            Some('"') => {
                // b"…" / c"…" / r"…" (ahead==1) or br"…" (ahead==2) — but a
                // bare r"…" must be raw (no escapes); b"/c" use escapes.
                let raw = self.peek_at(ahead - 1) == Some('r') || c0 == Some('r');
                for _ in 0..ahead {
                    self.bump();
                }
                if raw {
                    self.raw_string_body(0, line, col);
                } else {
                    self.string(line, col);
                }
                true
            }
            Some('#') if c0 == Some('r') || ahead == 2 => {
                // Count hashes, then expect `"` (raw string) or an identifier
                // start (raw identifier r#ident — single hash only).
                let mut hashes = 0usize;
                while self.peek_at(ahead + hashes) == Some('#') {
                    hashes += 1;
                }
                match self.peek_at(ahead + hashes) {
                    Some('"') => {
                        for _ in 0..ahead + hashes + 1 {
                            self.bump();
                        }
                        self.raw_string_body(hashes, line, col);
                        true
                    }
                    Some(c) if hashes == 1 && ahead == 1 && (c == '_' || c.is_alphabetic()) => {
                        // Raw identifier: consume `r#` then lex the ident.
                        self.bump();
                        self.bump();
                        self.ident(line, col);
                        true
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }

    /// The body of a raw string whose opening `"` was consumed; terminated by
    /// `"` followed by `hashes` hash characters.
    fn raw_string_body(&mut self, hashes: usize, line: u32, col: u32) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek() == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
        self.push(TokenKind::Str, "r\"…\"".to_string(), line, col);
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        match self.peek() {
            Some('\\') => {
                // Escaped char literal: consume escape, then to closing quote.
                while let Some(c) = self.bump() {
                    if c == '\\' {
                        self.bump();
                    } else if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, "'…'".to_string(), line, col);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // `'x'` is a char literal; `'x` followed by anything else is
                // a lifetime (consume the identifier run).
                let mut ident = String::new();
                let mut ahead = 0usize;
                while let Some(n) = self.peek_at(ahead) {
                    if n == '_' || n.is_alphanumeric() {
                        ident.push(n);
                        ahead += 1;
                    } else {
                        break;
                    }
                }
                if self.peek_at(ahead) == Some('\'') {
                    for _ in 0..=ahead {
                        self.bump();
                    }
                    self.push(TokenKind::Char, "'…'".to_string(), line, col);
                } else {
                    for _ in 0..ahead {
                        self.bump();
                    }
                    self.push(TokenKind::Lifetime, ident, line, col);
                }
            }
            Some(_) => {
                // Punctuation char literal like '(' or '"'.
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, "'…'".to_string(), line, col);
            }
            None => {}
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        // Digits plus everything a numeric literal can carry (underscores,
        // type suffixes, exponents, hex digits, one decimal point) — but a
        // `..` is a range operator, not part of the number.
        let mut seen_dot = false;
        while let Some(c) = self.peek() {
            if c == '.' {
                if seen_dot || self.peek_at(1) == Some('.') {
                    break;
                }
                // `1.method()` — the dot belongs to the call, not the number.
                if self
                    .peek_at(1)
                    .is_some_and(|n| n == '_' || n.is_alphabetic())
                {
                    break;
                }
                seen_dot = true;
                self.bump();
            } else if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else if (c == '+' || c == '-')
                && self
                    .chars
                    .get(self.pos.wrapping_sub(1))
                    .is_some_and(|&p| p == 'e' || p == 'E')
            {
                // Exponent sign (1e-9).
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, "#".to_string(), line, col);
    }
}

/// Mark every token belonging to a `#[test]` / `#[cfg(test)]` item (the
/// attribute itself, any stacked attributes, and the item body through its
/// matching `}` or terminating `;`) with `in_test = true`.
///
/// `#[cfg(not(test))]` and `#[cfg(feature = "test")]` are *not* test code:
/// the predicate must be exactly `test`.
fn mark_test_code(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some(close) = matching(tokens, i + 1, '[', ']') {
                if is_test_attribute(&tokens[i + 2..close]) {
                    let end = item_end(tokens, close + 1);
                    for token in &mut tokens[i..end] {
                        token.in_test = true;
                    }
                    i = end;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Whether the attribute tokens (between `#[` and `]`) denote test code:
/// `test`, `cfg(test)`, or a path ending in `::test` (e.g. `tokio::test`).
fn is_test_attribute(attr: &[Token]) -> bool {
    match attr {
        [t] if t.is_ident("test") => true,
        [c, open, t, close]
            if c.is_ident("cfg")
                && open.is_punct('(')
                && t.is_ident("test")
                && close.is_punct(')') =>
        {
            true
        }
        [.., sep, t] if sep.is_punct(':') && t.is_ident("test") => true,
        _ => false,
    }
}

/// Index one past the end of the item starting at `start`: consumes stacked
/// attributes, then scans to the first top-level `{` (returning one past its
/// matching `}`) or `;`, whichever comes first.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Stacked attributes after the test attribute (`#[test] #[ignore] fn …`).
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        match matching(tokens, i + 1, '[', ']') {
            Some(close) => i = close + 1,
            None => return tokens.len(),
        }
    }
    let mut depth_paren = 0i32;
    let mut depth_bracket = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes()[0] {
                b'(' => depth_paren += 1,
                b')' => depth_paren -= 1,
                b'[' => depth_bracket += 1,
                b']' => depth_bracket -= 1,
                b'{' if depth_paren == 0 && depth_bracket == 0 => {
                    return matching(tokens, i, '{', '}')
                        .map(|c| c + 1)
                        .unwrap_or(tokens.len());
                }
                b';' if depth_paren == 0 && depth_bracket == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Index of the token closing the delimiter opened at `open_idx`, balancing
/// nested pairs of the same kind.  `None` if unbalanced.
pub fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for (offset, token) in tokens[open_idx..].iter().enumerate() {
        if token.is_punct(open) {
            depth += 1;
        } else if token.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(open_idx + offset);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // partial_cmp in a line comment
            /* HashMap in a /* nested */ block comment */
            let a = "partial_cmp inside a string";
            let b = r#"HashSet inside a raw "quoted" string"#;
            let c = 'x';
        "##;
        let tokens = lex(src);
        let names = idents(&tokens);
        assert!(!names.contains(&"partial_cmp"));
        assert!(!names.contains(&"HashMap"));
        assert!(!names.contains(&"HashSet"));
        assert!(names.contains(&"let"));
        assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
        assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let tokens = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let tokens = lex("let r#match = r#fn;");
        assert!(idents(&tokens).contains(&"match"));
        assert!(idents(&tokens).contains(&"fn"));
    }

    #[test]
    fn positions_are_one_based_line_col() {
        let tokens = lex("a\n  bc");
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = r#"
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
            }
            fn also_live() {}
        "#;
        let tokens = lex(src);
        let unwraps: Vec<_> = tokens.iter().filter(|t| t.is_ident("unwrap")).collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].in_test);
        assert!(unwraps[1].in_test);
        let also = tokens.iter().find(|t| t.is_ident("also_live")).unwrap();
        assert!(!also.in_test);
    }

    #[test]
    fn test_attribute_with_stacked_attributes_is_marked() {
        let src = r#"
            #[test]
            #[ignore]
            fn flaky() { z.unwrap(); }
        "#;
        let tokens = lex(src);
        let unwrap = tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert!(unwrap.in_test);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = r#"
            #[cfg(not(test))]
            fn prod() { a.unwrap(); }
            #[cfg(test)]
            use something::test_only;
            fn after() { b.unwrap(); }
        "#;
        let tokens = lex(src);
        let unwraps: Vec<_> = tokens.iter().filter(|t| t.is_ident("unwrap")).collect();
        assert!(!unwraps[0].in_test, "cfg(not(test)) must stay live");
        assert!(!unwraps[1].in_test, "a cfg(test) use item ends at the `;`");
        let test_only = tokens.iter().find(|t| t.is_ident("test_only")).unwrap();
        assert!(test_only.in_test);
    }

    #[test]
    fn numeric_literals_with_method_calls_split_at_the_dot() {
        let tokens = lex("1.0f64.total_cmp(&2.0); 0..n; x.0");
        assert!(idents(&tokens).contains(&"total_cmp"));
        // The range `..` stays punctuation, not part of the literal.
        let dots = tokens.iter().filter(|t| t.is_punct('.')).count();
        assert!(dots >= 3);
    }
}
