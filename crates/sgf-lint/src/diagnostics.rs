//! Diagnostic rendering: rustc-style text for humans, JSON for CI artifacts.
//!
//! The JSON writer is hand-rolled (std-only policy) and emits a stable,
//! fully-escaped document:
//!
//! ```json
//! {
//!   "findings": [ {"rule": "R1", "file": "...", "line": 9, "col": 3,
//!                  "message": "...", "snippet": "..."} ],
//!   "allowed":  [ {"rule": "R3", "file": "...", "line": 1, "col": 1,
//!                  "message": "...", "snippet": "...",
//!                  "justification": "..."} ],
//!   "summary":  {"files_checked": 10, "findings": 1, "allowed": 2}
//! }
//! ```

use crate::rules::Finding;

/// A finding suppressed by an `[[allow]]` entry, kept for the report so the
/// audit trail (including the justification) is visible in CI artifacts.
#[derive(Debug, Clone)]
pub struct Allowed {
    /// The suppressed finding.
    pub finding: Finding,
    /// The allowlist entry's justification.
    pub justification: String,
}

/// The outcome of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any allowlist entry — these fail the run.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a justified allowlist entry.
    pub allowed: Vec<Allowed>,
    /// Number of `.rs` files checked.
    pub files_checked: usize,
}

impl Report {
    /// Whether the run should exit nonzero.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Render one finding in rustc style:
///
/// ```text
/// error[R1]: `partial_cmp` escaped with unwrap ... use `f64::total_cmp`
///   --> crates/sgf-model/src/cfs.rs:119:27
///    |  order.sort_by(|&a, &b| best_corr(b).partial_cmp(&best_corr(a))...
/// ```
pub fn render_text(finding: &Finding) -> String {
    let mut out = String::new();
    out.push_str(&format!("error[{}]: {}\n", finding.rule, finding.message));
    out.push_str(&format!(
        "  --> {}:{}:{}\n",
        finding.file, finding.line, finding.col
    ));
    if !finding.snippet.is_empty() {
        out.push_str(&format!("   |  {}\n", finding.snippet));
    }
    out
}

/// Render the full report as the JSON document described in the module docs.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_finding(&mut out, f, None);
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"allowed\": [");
    for (i, a) in report.allowed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_finding(&mut out, &a.finding, Some(&a.justification));
    }
    if !report.allowed.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"summary\": {");
    out.push_str(&format!(
        "\"files_checked\": {}, \"findings\": {}, \"allowed\": {}",
        report.files_checked,
        report.findings.len(),
        report.allowed.len()
    ));
    out.push_str("}\n}\n");
    out
}

fn write_finding(out: &mut String, f: &Finding, justification: Option<&str>) {
    out.push('{');
    out.push_str(&format!("\"rule\": {}", json_string(f.rule)));
    out.push_str(&format!(", \"file\": {}", json_string(&f.file)));
    out.push_str(&format!(", \"line\": {}, \"col\": {}", f.line, f.col));
    out.push_str(&format!(", \"message\": {}", json_string(&f.message)));
    out.push_str(&format!(", \"snippet\": {}", json_string(&f.snippet)));
    if let Some(j) = justification {
        out.push_str(&format!(", \"justification\": {}", json_string(j)));
    }
    out.push('}');
}

/// Escape a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "R1",
            file: "crates/x/src/a.rs".to_string(),
            line: 9,
            col: 3,
            message: "bad \"comparator\"".to_string(),
            snippet: "v.sort_by(|a, b| a.partial_cmp(b).unwrap());".to_string(),
        }
    }

    #[test]
    fn text_has_rule_id_and_location() {
        let text = render_text(&sample());
        assert!(text.contains("error[R1]"));
        assert!(text.contains("crates/x/src/a.rs:9:3"));
        assert!(text.contains("partial_cmp"));
    }

    #[test]
    fn json_is_escaped_and_complete() {
        let report = Report {
            findings: vec![sample()],
            allowed: vec![Allowed {
                finding: sample(),
                justification: "proven\tfine".to_string(),
            }],
            files_checked: 3,
        };
        let json = render_json(&report);
        assert!(json.contains("\\\"comparator\\\""));
        assert!(json.contains("\\tfine"));
        assert!(json.contains("\"files_checked\": 3"));
        assert!(json.contains("\"findings\": 1"));
        // Every quote inside values is escaped: the document must stay
        // parseable by the serve-side JSON reader used in integration tests.
        assert_eq!(json.matches("\"rule\"").count(), 2);
    }
}
