//! CLI for the sgf-lint workspace pass.
//!
//! ```text
//! sgf-lint [--root DIR] [--config FILE] [--format text|json]
//!          [--json-out FILE] [--path PREFIX]... [--quiet]
//! sgf-lint --explain RULE
//! sgf-lint --list-rules
//! ```
//!
//! Exit codes: 0 = clean, 1 = unallowed findings, 2 = usage/policy/engine
//! error (bad flags, unreadable tree, stale exception entries).

use std::path::PathBuf;
use std::process::ExitCode;

use sgf_lint::diagnostics::{render_json, render_text};
use sgf_lint::rules::{rule_info, RULES};
use sgf_lint::{load_policy, run};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    json_out: Option<PathBuf>,
    paths: Vec<String>,
    quiet: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

const USAGE: &str = "\
sgf-lint: mechanized determinism & robustness invariants (R1-R5)

USAGE:
    sgf-lint [OPTIONS]
    sgf-lint --explain <RULE>    full rationale for one rule
    sgf-lint --list-rules        one-line summary of every rule

OPTIONS:
    --root <DIR>       workspace root to walk [default: nearest lint.toml]
    --config <FILE>    policy file [default: <root>/lint.toml]
    --format <FMT>     text | json [default: text]
    --json-out <FILE>  also write the JSON report to FILE (for CI artifacts)
    --path <PREFIX>    only check files under PREFIX (repeatable; skips
                       stale-allowlist checks, which need a full pass)
    --quiet            suppress the summary line on success
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();

    // Modes that need no tree walk.
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if argv.iter().any(|a| a == "--list-rules") {
        for rule in &RULES {
            println!("{:4} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(pos) = argv.iter().position(|a| a == "--explain") {
        return match argv.get(pos + 1).and_then(|id| rule_info(id)) {
            Some(info) => {
                println!("{}", info.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "sgf-lint: --explain needs a rule ID ({})",
                    RULES.map(|r| r.id).join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("sgf-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let config = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let policy = match load_policy(&config) {
        Ok(policy) => policy,
        Err(e) => {
            eprintln!("sgf-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match run(&args.root, &policy, &args.paths) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sgf-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, render_json(&report)) {
            eprintln!("sgf-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match args.format {
        Format::Json => print!("{}", render_json(&report)),
        Format::Text => {
            for finding in &report.findings {
                print!("{}", render_text(finding));
            }
            if !args.quiet || !report.is_clean() {
                eprintln!(
                    "sgf-lint: {} file(s) checked, {} finding(s), {} allowed exception(s)",
                    report.files_checked,
                    report.findings.len(),
                    report.allowed.len()
                );
            }
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::new(),
        config: None,
        format: Format::Text,
        json_out: None,
        paths: Vec::new(),
        quiet: false,
    };
    let mut root: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--json-out" => args.json_out = Some(PathBuf::from(value("--json-out")?)),
            "--path" => args.paths.push(value("--path")?),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                }
            }
            "--quiet" => args.quiet = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    args.root = match root {
        Some(root) => root,
        None => find_root()?,
    };
    Ok(args)
}

/// Walk upward from the current directory to the nearest `lint.toml`, so
/// `cargo run -p sgf-lint` works from any crate directory.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot get cwd: {e}"))?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no lint.toml found walking up from the current directory; \
                        pass --root / --config explicitly"
                .to_string());
        }
    }
}
