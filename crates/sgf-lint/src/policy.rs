//! The checked-in lint policy: rule scoping, the RNG audit list, and the
//! justification-required allowlist.
//!
//! The policy lives in a `lint.toml` at the workspace root (tests point the
//! engine at a fixture policy instead).  Only the small TOML subset the
//! policy needs is parsed — tables, arrays of tables, strings, string
//! arrays, booleans, integers — by a hand-rolled reader consistent with the
//! workspace's no-new-dependencies rule.  Unknown keys are **errors**: a
//! typo in a policy file must never silently widen the allowlist.
//!
//! ## Shape
//!
//! ```toml
//! exclude = ["vendor", "target"]          # path prefixes never walked
//!
//! [rules.R2]
//! include = ["crates/sgf-index/src"]      # files/dirs the rule applies to
//!
//! [rules.R4]
//! include = ["crates"]
//! rng_types = ["Rng", "RngCore"]          # type names that mark an RNG
//! audited = ["crates/a/src/x.rs::draw"]   # audited `file::fn` draw sites
//!
//! [[allow]]
//! rule = "R3"
//! file = "crates/sgf-serve/src/json.rs"   # path suffix
//! pattern = "bytes[start..self.pos]"      # must appear on the flagged line
//! justification = "pos is bounds-checked by peek() before every advance"
//! ```
//!
//! Every `[[allow]]` entry must carry a non-empty `justification`, and every
//! entry must suppress at least one finding — a stale entry fails the run,
//! so the allowlist can only shrink when code gets cleaner.

use std::collections::BTreeMap;
use std::fmt;

/// A policy-file problem (I/O, syntax, or validation).
#[derive(Debug)]
pub struct PolicyError(pub String);

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy error: {}", self.0)
    }
}

impl std::error::Error for PolicyError {}

/// Scope of one rule: which workspace paths it applies to.
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// Path prefixes (or exact `.rs` paths), relative to the root, the rule
    /// runs on.  Empty means the rule never fires.
    pub include: Vec<String>,
}

impl RuleScope {
    /// Whether `rel_path` (forward-slash, root-relative) is in scope.
    pub fn applies_to(&self, rel_path: &str) -> bool {
        self.include.iter().any(|p| path_matches(p, rel_path))
    }
}

/// One audited exception with its mandatory justification.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule ID the entry suppresses (`R1`..`R5`).
    pub rule: String,
    /// Path suffix of the file the finding is in.
    pub file: String,
    /// Substring that must appear on the flagged source line.
    pub pattern: String,
    /// Why the exception is sound.  Required, surfaced in reports.
    pub justification: String,
}

/// The parsed policy file.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Root-relative path prefixes the walker never descends into.
    pub exclude: Vec<String>,
    /// Per-rule scopes, keyed by rule ID.
    pub rules: BTreeMap<String, RuleScope>,
    /// Type names whose `&mut` receipt marks a function as RNG-taking (R4).
    pub rng_types: Vec<String>,
    /// Audited `file.rs::fn_name` RNG draw sites (R4).
    pub rng_audited: Vec<String>,
    /// Justified suppressions.
    pub allows: Vec<AllowEntry>,
}

/// Whether `rel_path` equals `prefix` or sits underneath it.
pub fn path_matches(prefix: &str, rel_path: &str) -> bool {
    rel_path == prefix
        || rel_path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}

/// The rule IDs the engine knows.  Policy files naming anything else fail.
pub const KNOWN_RULES: [&str; 5] = ["R1", "R2", "R3", "R4", "R5"];

impl Policy {
    /// Parse and validate a policy document.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        let mut policy = Policy {
            exclude: Vec::new(),
            rules: BTreeMap::new(),
            rng_types: Vec::new(),
            rng_audited: Vec::new(),
            allows: Vec::new(),
        };
        let mut table = TablePath::Root;
        let statements = split_statements(text)?;
        for (line_no, statement) in statements {
            let err = |msg: &str| PolicyError(format!("lint.toml:{line_no}: {msg}"));
            if let Some(header) = statement.strip_prefix("[[") {
                let name = header
                    .strip_suffix("]]")
                    .ok_or_else(|| err("malformed [[table]] header"))?
                    .trim();
                if name != "allow" {
                    return Err(err(&format!("unknown array-of-tables `[[{name}]]`")));
                }
                policy.allows.push(AllowEntry {
                    rule: String::new(),
                    file: String::new(),
                    pattern: String::new(),
                    justification: String::new(),
                });
                table = TablePath::Allow;
            } else if let Some(header) = statement.strip_prefix('[') {
                let name = header
                    .strip_suffix(']')
                    .ok_or_else(|| err("malformed [table] header"))?
                    .trim();
                let rule = name
                    .strip_prefix("rules.")
                    .ok_or_else(|| err(&format!("unknown table `[{name}]`")))?;
                if !KNOWN_RULES.contains(&rule) {
                    return Err(err(&format!(
                        "unknown rule `{rule}` (known: {})",
                        KNOWN_RULES.join(", ")
                    )));
                }
                policy.rules.entry(rule.to_string()).or_default();
                table = TablePath::Rule(rule.to_string());
            } else {
                let (key, value) = parse_assignment(&statement)
                    .ok_or_else(|| err("expected `key = value` or a [table] header"))?;
                policy.assign(&table, key, value, line_no)?;
            }
        }
        policy.validate()?;
        Ok(policy)
    }

    fn assign(
        &mut self,
        table: &TablePath,
        key: &str,
        value: Value,
        line_no: usize,
    ) -> Result<(), PolicyError> {
        let err = |msg: String| PolicyError(format!("lint.toml:{line_no}: {msg}"));
        match table {
            TablePath::Root => match key {
                "exclude" => self.exclude = value.into_strings(key, line_no)?,
                "version" => {} // reserved for format evolution; value ignored
                other => return Err(err(format!("unknown top-level key `{other}`"))),
            },
            TablePath::Rule(rule) => {
                let scope = self.rules.entry(rule.clone()).or_default();
                match key {
                    "include" => scope.include = value.into_strings(key, line_no)?,
                    "rng_types" if rule == "R4" => {
                        self.rng_types = value.into_strings(key, line_no)?
                    }
                    "audited" if rule == "R4" => {
                        self.rng_audited = value.into_strings(key, line_no)?
                    }
                    other => return Err(err(format!("unknown key `{other}` in [rules.{rule}]"))),
                }
            }
            TablePath::Allow => {
                let entry = self
                    .allows
                    .last_mut()
                    .ok_or_else(|| err("key outside any [[allow]] entry".to_string()))?;
                let text = value.into_string(key, line_no)?;
                match key {
                    "rule" => entry.rule = text,
                    "file" => entry.file = text,
                    "pattern" => entry.pattern = text,
                    "justification" => entry.justification = text,
                    other => return Err(err(format!("unknown key `{other}` in [[allow]]"))),
                }
            }
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), PolicyError> {
        for (i, entry) in self.allows.iter().enumerate() {
            let which = format!("[[allow]] entry #{}", i + 1);
            if !KNOWN_RULES.contains(&entry.rule.as_str()) {
                return Err(PolicyError(format!(
                    "{which} names unknown rule `{}`",
                    entry.rule
                )));
            }
            if entry.file.is_empty() || entry.pattern.is_empty() {
                return Err(PolicyError(format!(
                    "{which} must set both `file` and `pattern`"
                )));
            }
            if entry.justification.trim().is_empty() {
                return Err(PolicyError(format!(
                    "{which} ({}: {}) has no justification — every audited \
                     exception must say why it is sound",
                    entry.rule, entry.file
                )));
            }
        }
        Ok(())
    }

    /// Scope of `rule` (an absent table means the rule never fires).
    pub fn scope(&self, rule: &str) -> Option<&RuleScope> {
        self.rules.get(rule)
    }
}

enum TablePath {
    Root,
    Rule(String),
    Allow,
}

#[derive(Debug)]
enum Value {
    Str(String),
    Array(Vec<Value>),
    Bool(#[allow(dead_code)] bool),
    Int(#[allow(dead_code)] i64),
}

impl Value {
    fn into_string(self, key: &str, line_no: usize) -> Result<String, PolicyError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(PolicyError(format!(
                "lint.toml:{line_no}: `{key}` must be a string"
            ))),
        }
    }

    fn into_strings(self, key: &str, line_no: usize) -> Result<Vec<String>, PolicyError> {
        match self {
            Value::Array(items) => items
                .into_iter()
                .map(|v| v.into_string(key, line_no))
                .collect(),
            _ => Err(PolicyError(format!(
                "lint.toml:{line_no}: `{key}` must be an array of strings"
            ))),
        }
    }
}

/// Split the document into logical statements (header or assignment), each
/// tagged with its starting line number.  Multi-line arrays are joined;
/// `#` comments are stripped outside strings.
fn split_statements(text: &str) -> Result<Vec<(usize, String)>, PolicyError> {
    let mut statements = Vec::new();
    let mut pending = String::new();
    let mut pending_start = 0usize;
    let mut depth = 0i32;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if pending.is_empty() {
            pending_start = line_no;
        } else {
            pending.push(' ');
        }
        pending.push_str(trimmed);
        depth += bracket_delta(trimmed);
        if depth < 0 {
            return Err(PolicyError(format!("lint.toml:{line_no}: unbalanced `]`")));
        }
        if depth == 0 {
            statements.push((pending_start, std::mem::take(&mut pending)));
        }
    }
    if !pending.is_empty() {
        return Err(PolicyError(format!(
            "lint.toml:{pending_start}: unterminated array"
        )));
    }
    Ok(statements)
}

/// Net `[` vs `]` on a line, ignoring brackets inside strings and table
/// headers (`[rules.R1]` opens and closes on the same line, so its net is 0
/// either way).
fn bracket_delta(line: &str) -> i32 {
    let mut delta = 0i32;
    let mut in_str = false;
    let mut escape = false;
    for c in line.chars() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' => delta += 1,
            ']' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Strip a `#` comment not inside a string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '#' => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `key = value`.  Values: `"string"`, `[ ... ]`, `true`/`false`, int.
fn parse_assignment(statement: &str) -> Option<(&str, Value)> {
    let eq = find_top_level_eq(statement)?;
    let key = statement[..eq].trim();
    let value = statement[eq + 1..].trim();
    if key.is_empty() || !key.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Some((key, parse_value(value)?))
}

fn find_top_level_eq(s: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in s.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '=' => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_value(text: &str) -> Option<Value> {
    let text = text.trim();
    if let Some(body) = text.strip_prefix('[') {
        let body = body.strip_suffix(']')?;
        let mut items = Vec::new();
        for piece in split_array_items(body) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            items.push(parse_value(piece)?);
        }
        return Some(Value::Array(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body.strip_suffix('"')?;
        let mut out = String::new();
        let mut escape = false;
        for c in body.chars() {
            if escape {
                match c {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    '\\' => out.push('\\'),
                    '"' => out.push('"'),
                    other => out.push(other),
                }
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else {
                out.push(c);
            }
        }
        return Some(Value::Str(out));
    }
    match text {
        "true" => Some(Value::Bool(true)),
        "false" => Some(Value::Bool(false)),
        _ => text.parse::<i64>().ok().map(Value::Int),
    }
}

/// Split an array body at top-level commas (commas inside strings don't
/// count; nested arrays are not needed by the policy format).
fn split_array_items(body: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in body.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            ',' => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&body[start..]);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # a policy
        exclude = ["vendor", "target"]

        [rules.R1]
        include = ["crates", "src"]

        [rules.R4]
        include = ["crates"]
        rng_types = ["Rng", "RngCore"]
        audited = [
            "crates/a/src/x.rs::draw",
            "crates/b/src/y.rs::sample",  # trailing comment
        ]

        [[allow]]
        rule = "R1"
        file = "crates/a/src/x.rs"
        pattern = "partial_cmp"
        justification = "inputs are clamped to [0, 1] upstream"
    "#;

    #[test]
    fn parses_the_full_shape() {
        let policy = Policy::parse(SAMPLE).unwrap();
        assert_eq!(policy.exclude, vec!["vendor", "target"]);
        assert_eq!(policy.scope("R1").unwrap().include, vec!["crates", "src"]);
        assert!(policy.scope("R2").is_none());
        assert_eq!(policy.rng_types, vec!["Rng", "RngCore"]);
        assert_eq!(policy.rng_audited.len(), 2);
        assert_eq!(policy.allows.len(), 1);
        assert_eq!(policy.allows[0].rule, "R1");
    }

    #[test]
    fn scope_matching_is_prefix_or_exact() {
        let scope = RuleScope {
            include: vec!["crates/sgf-core/src".into(), "src/lib.rs".into()],
        };
        assert!(scope.applies_to("crates/sgf-core/src/dp.rs"));
        assert!(scope.applies_to("src/lib.rs"));
        assert!(!scope.applies_to("crates/sgf-core/src2/dp.rs"));
        assert!(!scope.applies_to("src/lib.rs.bak"));
    }

    #[test]
    fn missing_justification_is_rejected() {
        let bad = r#"
            [[allow]]
            rule = "R1"
            file = "a.rs"
            pattern = "x"
            justification = "   "
        "#;
        let err = Policy::parse(bad).unwrap_err();
        assert!(err.0.contains("justification"), "{err}");
    }

    #[test]
    fn unknown_keys_and_rules_are_rejected() {
        assert!(Policy::parse("allowlist = []").is_err());
        assert!(Policy::parse("[rules.R9]").is_err());
        assert!(Policy::parse("[rules.R1]\ninclude = [1]").is_err());
        assert!(Policy::parse("[[deny]]").is_err());
    }

    #[test]
    fn comments_inside_strings_survive() {
        let policy = Policy::parse(r##"exclude = ["has#hash"]"##).unwrap();
        assert_eq!(policy.exclude, vec!["has#hash"]);
    }
}
