//! The rule catalog: R1–R5 over the lexed token stream.
//!
//! Each rule is a pure function from (tokens, file path, policy) to
//! findings.  Rules see only non-test tokens (the lexer marks
//! `#[cfg(test)]` / `#[test]` items) and only files inside their policy
//! scope.  They are deliberately lexical and **conservative**: a rule may
//! flag code a type checker could prove safe — that is what the
//! justification-required allowlist is for.  What a rule must never do is
//! stay silent on a real violation inside its scope.

use crate::lexer::{matching, Token, TokenKind};
use crate::policy::Policy;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule ID (`R1`..`R5`, or `POLICY` for stale-allowlist errors).
    pub rule: &'static str,
    /// Root-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Static description of a rule for `--explain` / `--list-rules`.
pub struct RuleInfo {
    /// Rule ID.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Full rationale shown by `--explain`.
    pub explain: &'static str,
}

/// The rule catalog.
pub const RULES: [RuleInfo; 5] = [
    RuleInfo {
        id: "R1",
        summary: "float-comparator soundness: no unwrapped partial_cmp in sort/max/min closures",
        explain: "\
R1 — float-comparator soundness

`partial_cmp(..).unwrap_or(Equal)` (or `.unwrap()` / `.expect(..)`) inside a
`sort_by` / `sort_unstable_by` / `max_by` / `min_by` / `binary_search_by`
closure is either a panic (unwrap on NaN) or a NON-TRANSITIVE comparator
(unwrap_or(Equal) makes NaN compare equal to everything), and `sort_by` is
allowed to respond to a non-total order with arbitrary — even
non-terminating — behaviour.  The store-equivalence guarantee (scan /
inverted / partition stores byte-identical in decisions, counts, and RNG
streams) rests on every decision-path ordering being a total order.

Fix: use `f64::total_cmp`, which is total over all bit patterns (including
NaN and ±0.0), optionally chained with `.then(..)` tie-breaks.  If the
inputs are provably NaN-free AND the comparator is only reached after a
finiteness check, add a [[allow]] entry with that proof as justification.",
    },
    RuleInfo {
        id: "R2",
        summary: "ordered-iteration discipline: no HashMap/HashSet in decision-path modules",
        explain: "\
R2 — ordered-iteration discipline

`HashMap` / `HashSet` iteration order is randomized per process (SipHash
with a random key).  Any decision-path code that iterates one — directly,
or via `keys()` / `values()` / `iter()` — produces a different candidate
order, therefore a different RNG consumption pattern, therefore different
releases across runs: it silently breaks the byte-identical
store-equivalence guarantee and the seeded-replay tests.  Because a lexical
pass cannot prove a given map is never iterated, R2 conservatively forbids
the *types* inside decision-path modules.

Fix: use `BTreeMap` / `BTreeSet` (deterministic order, and the keyed
lookups these modules need are O(log n) on small maps), or a sorted Vec.
If a hash map is genuinely never iterated and measurably hotter, add a
[[allow]] entry whose justification proves order-insensitivity.",
    },
    RuleInfo {
        id: "R3",
        summary: "panic-free serving: no unwrap/expect/panic!/indexing in serve request paths",
        explain: "\
R3 — panic-free serving

A panic in a connection reader or worker thread kills that thread: the
client sees a hung connection instead of a machine-readable reject code,
a poisoned lock can cascade the panic into every other thread, and a
reserved (ε, δ) budget can leak.  R3 forbids `.unwrap()`, `.expect(..)`,
`panic!` / `unreachable!` / `todo!` / `unimplemented!`, and
slice/map indexing (`x[i]`, which panics out of bounds — use `.get(..)`)
in sgf-serve's connection/request path modules, outside test code.

Fix: convert request-path failures into protocol error responses (reject
codes), make lock poisoning non-fatal (`unwrap_or_else(|e| e.into_inner())`
is sound when the protected state has no invariant a panicking holder can
break mid-update), and replace indexing with `.get(..)`.  Provably
infallible sites go behind [[allow]] entries with one-line proofs.",
    },
    RuleInfo {
        id: "R4",
        summary: "RNG discipline: every fn taking &mut an RNG must be in the audited list",
        explain: "\
R4 — RNG discipline

The Theorem-1 accounting and the seeded replay / stream-equivalence proofs
assume the mechanism's RNG stream is consumed at exactly the audited draw
sites, in a data-independent order.  A new helper that takes `&mut` an RNG
type is a new draw site: if its draw count depends on the data (or on which
store served the candidates), it forks the stream and every downstream
decision diverges — the class of bug PR 3 engineered out of the privacy
test.  R4 requires every function whose parameters include `&mut <RNG>`
(concrete type, `impl Rng`, `dyn RngCore`, or a generic bounded by an RNG
trait) to appear in the audited list in lint.toml.

Fix: audit the new function — check its draws are data-independent given
its inputs, or that all callers account for the consumption — then add
`\"<file>.rs::<fn>\" ` to `[rules.R4] audited` (the diff reviewer sees the
audit claim explicitly).  Stale audited entries fail the run.",
    },
    RuleInfo {
        id: "R5",
        summary: "accounting casts: no bare `as` casts in the (ε, δ) accounting module",
        explain: "\
R5 — accounting casts

`as` casts are silently lossy: `usize as f64` loses precision above 2^53,
`f64 as usize` truncates, saturates, and maps NaN to 0.  In sgf-core's dp
module those values are release counts and (ε, δ) budgets — a silent
rounding *down* of a composed ε understates the privacy cost, which is the
one direction the accounting must never err in.  R5 flags every `as
<numeric-type>` cast in the accounting module.

Fix: use the checked helpers in dp.rs (`count_to_f64`, which is exact up to
2^53 and saturates to +inf — conservatively *overstating* the budget —
beyond it; `ceil_to_usize`, which errors on non-finite or out-of-range) or
`f64::from` / `try_from` where the types allow, or add a [[allow]] entry
arguing the cast is exact over the value's full range.",
    },
];

/// Look up a rule's static info.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Run every policy-scoped rule over one file's token stream.
pub fn check_file(
    rel_path: &str,
    tokens: &[Token],
    lines: &[&str],
    policy: &Policy,
    rng_audit_hits: &mut Vec<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_scope = |rule: &str| {
        policy
            .scope(rule)
            .is_some_and(|scope| scope.applies_to(rel_path))
    };
    if in_scope("R1") {
        r1_float_comparators(rel_path, tokens, lines, &mut findings);
    }
    if in_scope("R2") {
        r2_unordered_collections(rel_path, tokens, lines, &mut findings);
    }
    if in_scope("R3") {
        r3_panic_free(rel_path, tokens, lines, &mut findings);
    }
    if in_scope("R4") {
        r4_rng_discipline(
            rel_path,
            tokens,
            lines,
            policy,
            rng_audit_hits,
            &mut findings,
        );
    }
    if in_scope("R5") {
        r5_accounting_casts(rel_path, tokens, lines, &mut findings);
    }
    findings
}

fn snippet(lines: &[&str], line: u32) -> String {
    lines
        .get(line as usize - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    file: &str,
    token: &Token,
    lines: &[&str],
    message: String,
) {
    findings.push(Finding {
        rule,
        file: file.to_string(),
        line: token.line,
        col: token.col,
        message,
        snippet: snippet(lines, token.line),
    });
}

/// Comparator-taking methods R1 inspects.
const COMPARATOR_METHODS: [&str; 5] = [
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// Escape hatches that turn a `partial_cmp` Option into a (possibly bogus)
/// Ordering inside a comparator.
const UNWRAP_LIKE: [&str; 5] = [
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
];

fn r1_float_comparators(file: &str, tokens: &[Token], lines: &[&str], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.in_test || t.kind != TokenKind::Ident || !COMPARATOR_METHODS.contains(&t.text.as_str())
        {
            continue;
        }
        let Some(open) = tokens.get(i + 1).filter(|n| n.is_punct('(')) else {
            continue;
        };
        let _ = open;
        let Some(close) = matching(tokens, i + 1, '(', ')') else {
            continue;
        };
        let region = &tokens[i + 2..close];
        let has_unwrap = region
            .iter()
            .any(|t| t.kind == TokenKind::Ident && UNWRAP_LIKE.contains(&t.text.as_str()));
        if !has_unwrap {
            continue;
        }
        if let Some(pc) = region.iter().find(|t| t.is_ident("partial_cmp")) {
            push(
                findings,
                "R1",
                file,
                pc,
                lines,
                format!(
                    "`partial_cmp` escaped with unwrap/expect/unwrap_or inside `{}` — \
                     a NaN either panics or produces a non-transitive comparator; \
                     use `f64::total_cmp`",
                    t.text
                ),
            );
        }
    }
}

fn r2_unordered_collections(
    file: &str,
    tokens: &[Token],
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    for t in tokens {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            push(
                findings,
                "R2",
                file,
                t,
                lines,
                format!(
                    "`{}` in a decision-path module — iteration order is randomized \
                     per process and would fork the RNG/decision stream; use \
                     `BTreeMap`/`BTreeSet` (or allowlist with an order-insensitivity proof)",
                    t.text
                ),
            );
        }
    }
}

/// Macros whose expansion panics.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede a `[` that is NOT an indexing
/// expression (slice patterns, array types/literals in expression position).
const NON_POSTFIX_KEYWORDS: [&str; 12] = [
    "let", "in", "return", "else", "match", "mut", "ref", "move", "as", "break", "continue", "if",
];

fn r3_panic_free(file: &str, tokens: &[Token], lines: &[&str], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.in_test {
            continue;
        }
        // `.unwrap()` / `.expect(..)` — method position only, so local
        // functions *named* expect (e.g. a parser combinator) don't match
        // unless called through `.`.
        if t.kind == TokenKind::Ident && (t.text == "unwrap" || t.text == "expect") {
            let after_dot = i > 0 && tokens[i - 1].is_punct('.');
            let called = tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
            if after_dot && called {
                push(
                    findings,
                    "R3",
                    file,
                    t,
                    lines,
                    format!(
                        "`.{}()` on a serve request path — a panic here hangs the client \
                         and can poison shared locks; return a protocol error instead",
                        t.text
                    ),
                );
            }
            continue;
        }
        // panic!-family macros.
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            push(
                findings,
                "R3",
                file,
                t,
                lines,
                format!(
                    "`{}!` on a serve request path — convert to a protocol error response",
                    t.text
                ),
            );
            continue;
        }
        // Postfix indexing `expr[..]`: `[` whose previous token ends an
        // expression (identifier, literal, `)`, or `]`).
        if t.is_punct('[') && i > 0 {
            let prev = &tokens[i - 1];
            let postfix = match prev.kind {
                TokenKind::Ident => !NON_POSTFIX_KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Number | TokenKind::Str => true,
                TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                _ => false,
            };
            // Attributes (`#[...]`) have `#` before the bracket; the `#`
            // itself is Punct so they never look postfix.
            if postfix {
                push(
                    findings,
                    "R3",
                    file,
                    t,
                    lines,
                    "indexing (`x[i]`) on a serve request path panics out of bounds — \
                     use `.get(..)` and handle `None`"
                        .to_string(),
                );
            }
        }
    }
}

fn r4_rng_discipline(
    file: &str,
    tokens: &[Token],
    lines: &[&str],
    policy: &Policy,
    rng_audit_hits: &mut Vec<String>,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].in_test || !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            // `fn(..)` pointer type, not an item.
            i += 1;
            continue;
        };
        // Signature region: generics + params + return + where, up to the
        // body `{` or a trailing `;` at top level.
        let mut j = i + 2;
        let generics_start = j;
        if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            j = match matching_angle(tokens, j) {
                Some(close) => close + 1,
                None => {
                    i += 1;
                    continue;
                }
            };
        }
        let generics = &tokens[generics_start..j];
        if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let Some(params_close) = matching(tokens, j, '(', ')') else {
            i += 1;
            continue;
        };
        let params = &tokens[j + 1..params_close];
        // Trailing return type / where clause up to `{` or `;`.
        let mut k = params_close + 1;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            k += 1;
        }
        let tail = &tokens[params_close + 1..k.min(tokens.len())];

        if fn_takes_mut_rng(params, generics, tail, &policy.rng_types) {
            let key = format!("{file}::{}", name.text);
            if policy.rng_audited.contains(&key) {
                rng_audit_hits.push(key);
            } else {
                push(
                    findings,
                    "R4",
                    file,
                    name,
                    lines,
                    format!(
                        "fn `{}` takes `&mut` an RNG but `{key}` is not in the audited \
                         list — audit its draws for data-independence, then add it to \
                         `[rules.R4] audited` in lint.toml",
                        name.text
                    ),
                );
            }
        }
        i = k.max(i + 1);
    }
}

/// Match `<`..`>` for a generics list, not counting `->` arrows.
fn matching_angle(tokens: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut idx = open_idx;
    while idx < tokens.len() {
        let t = &tokens[idx];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            let is_arrow =
                idx > 0 && (tokens[idx - 1].is_punct('-') || tokens[idx - 1].is_punct('='));
            if !is_arrow {
                depth -= 1;
                if depth == 0 {
                    return Some(idx);
                }
            }
        }
        idx += 1;
    }
    None
}

/// Whether a parameter list contains `&mut <rng>` where `<rng>` is a
/// configured RNG type, `impl <Rng>`, `dyn <Rng>`, or a generic parameter
/// bounded by an RNG trait in the generics list or where clause.
fn fn_takes_mut_rng(
    params: &[Token],
    generics: &[Token],
    tail: &[Token],
    rng_types: &[String],
) -> bool {
    let is_rng = |t: &Token| t.kind == TokenKind::Ident && rng_types.iter().any(|r| r == &t.text);
    // Generic parameters with an RNG bound: `IDENT :` followed by a bound
    // list containing an RNG type before the next top-level `,` or the end.
    let mut rng_generics: Vec<&str> = Vec::new();
    for region in [generics, tail] {
        let mut idx = 0usize;
        while idx + 1 < region.len() {
            if region[idx].kind == TokenKind::Ident && region[idx + 1].is_punct(':') {
                let name = region[idx].text.as_str();
                let mut depth = 0i32;
                let mut b = idx + 2;
                while b < region.len() {
                    let t = &region[b];
                    if t.is_punct('<') || t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct('>') || t.is_punct(')') {
                        depth -= 1;
                    } else if t.is_punct(',') && depth <= 0 {
                        break;
                    }
                    if is_rng(t) && depth >= 0 {
                        rng_generics.push(name);
                        break;
                    }
                    b += 1;
                }
            }
            idx += 1;
        }
    }
    // Scan params for `& [lifetime] mut <type..>` up to the next top-level
    // comma; RNG-taking if the type mentions an RNG name or RNG-bounded
    // generic.
    let mut idx = 0usize;
    while idx < params.len() {
        if !params[idx].is_punct('&') {
            idx += 1;
            continue;
        }
        let mut t = idx + 1;
        if params.get(t).is_some_and(|x| x.kind == TokenKind::Lifetime) {
            t += 1;
        }
        if !params.get(t).is_some_and(|x| x.is_ident("mut")) {
            idx += 1;
            continue;
        }
        // Type tokens after `mut` up to the top-level `,`.
        let mut depth = 0i32;
        let mut b = t + 1;
        while b < params.len() {
            let token = &params[b];
            if token.is_punct('<') || token.is_punct('(') {
                depth += 1;
            } else if token.is_punct('>') || token.is_punct(')') {
                depth -= 1;
            } else if token.is_punct(',') && depth <= 0 {
                break;
            }
            if is_rng(token)
                || (token.kind == TokenKind::Ident && rng_generics.contains(&token.text.as_str()))
            {
                return true;
            }
            b += 1;
        }
        idx = b;
    }
    false
}

/// Primitive numeric types an `as` cast can target.
const NUMERIC_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "isize", "f32",
];

fn r5_accounting_casts(file: &str, tokens: &[Token], lines: &[&str], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.in_test || !t.is_ident("as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else {
            continue;
        };
        let is_numeric = target.kind == TokenKind::Ident
            && (NUMERIC_TYPES.contains(&target.text.as_str()) || target.text == "f64");
        if is_numeric {
            push(
                findings,
                "R5",
                file,
                t,
                lines,
                format!(
                    "bare `as {}` cast in the accounting module — silently lossy on \
                     counts/budgets; use the checked dp.rs helpers or try_from",
                    target.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::policy::Policy;

    fn policy_all(rule: &str) -> Policy {
        let extra = if rule == "R4" {
            "rng_types = [\"Rng\", \"RngCore\", \"StdRng\"]\naudited = [\"f.rs::audited_fn\"]\n"
        } else {
            ""
        };
        Policy::parse(&format!("[rules.{rule}]\ninclude = [\"f.rs\"]\n{extra}")).unwrap()
    }

    fn run(rule: &str, src: &str) -> Vec<Finding> {
        let tokens = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let mut hits = Vec::new();
        check_file("f.rs", &tokens, &lines, &policy_all(rule), &mut hits)
    }

    #[test]
    fn r1_flags_unwrapped_partial_cmp_only_in_comparators() {
        let bad = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());";
        let findings = run("R1", bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "R1");
        // total_cmp is clean; partial_cmp handled without unwrap is clean;
        // partial_cmp outside a comparator is clean.
        assert!(run("R1", "v.sort_by(|a, b| a.total_cmp(b));").is_empty());
        assert!(run(
            "R1",
            "v.sort_by(|a, b| a.partial_cmp(b).map_or(Ordering::Less, |o| o));"
        )
        .is_empty());
        assert!(run("R1", "let x = a.partial_cmp(b).unwrap();").is_empty());
    }

    #[test]
    fn r1_sees_max_by_and_expect() {
        let bad = "it.max_by(|a, b| a.1.partial_cmp(b.1).expect(\"finite\"));";
        assert_eq!(run("R1", bad).len(), 1);
    }

    #[test]
    fn r2_flags_hash_collections() {
        assert_eq!(run("R2", "use std::collections::HashMap;").len(), 1);
        assert_eq!(run("R2", "let s: HashSet<u32> = HashSet::new();").len(), 2);
        assert!(run("R2", "use std::collections::BTreeMap;").is_empty());
        assert!(run("R2", "// HashMap in a comment\nlet s = \"HashMap\";").is_empty());
    }

    #[test]
    fn r3_flags_panic_paths() {
        assert_eq!(run("R3", "let x = y.unwrap();").len(), 1);
        assert_eq!(run("R3", "let x = y.expect(\"msg\");").len(), 1);
        assert_eq!(run("R3", "panic!(\"boom\");").len(), 1);
        assert_eq!(run("R3", "let v = items[i];").len(), 1);
        assert!(run("R3", "let x = y.unwrap_or(0);").is_empty());
        assert!(run("R3", "let v = items.get(i);").is_empty());
        assert!(run("R3", "let p: [u8; 4] = [0; 4];").is_empty());
        assert!(run("R3", "#[derive(Debug)]\nstruct S;").is_empty());
        assert!(run("R3", "fn expect(x: u8) {} expect(1);").is_empty());
    }

    #[test]
    fn r4_requires_audit_entries() {
        let unaudited = "pub fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 { 0.0 }";
        let findings = run("R4", unaudited);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("f.rs::draw"));
        assert!(run("R4", "pub fn audited_fn(rng: &mut StdRng) {}").is_empty());
        assert!(run("R4", "pub fn pure(x: &mut Vec<u8>) {}").is_empty());
        assert!(run("R4", "pub fn readonly(rng: &StdRng) {}").is_empty());
        // dyn / impl / where-clause forms are all caught.
        assert_eq!(run("R4", "fn a(rng: &mut dyn RngCore) {}").len(), 1);
        assert_eq!(run("R4", "fn b(rng: &mut impl Rng) {}").len(), 1);
        assert_eq!(run("R4", "fn c<R>(rng: &mut R) where R: Rng {}").len(), 1);
    }

    #[test]
    fn r5_flags_numeric_casts() {
        assert_eq!(run("R5", "let x = n as f64;").len(), 1);
        assert_eq!(run("R5", "let x = y.ceil() as usize;").len(), 1);
        assert!(run("R5", "use x as y;").is_empty());
        assert!(run("R5", "let x = f64::from(n);").is_empty());
    }

    #[test]
    fn rules_skip_test_code() {
        let src =
            "#[cfg(test)]\nmod tests { fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); } }";
        assert!(run("R1", src).is_empty());
    }
}
