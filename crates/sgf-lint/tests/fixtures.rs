//! Fixture-based integration tests for sgf-lint.
//!
//! The `fixtures/` tree holds one deliberately-violating file per rule,
//! annotated with `//~ <RULE>` markers on every line that must fire, plus
//! negative cases (strings, comments, raw strings, `#[cfg(test)]` blocks)
//! that must not.  The tests assert the engine's findings match the markers
//! *exactly* — no misses, no extras — then exercise the compiled binary's
//! exit codes and output formats, and finally self-check that the shipped
//! workspace is lint-clean under the checked-in `lint.toml`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use sgf_lint::diagnostics::Report;
use sgf_lint::{load_policy, run};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// Parse `//~ <RULE>` markers out of every fixture file: the exact set of
/// `(file, line, rule)` findings the engine must produce.
fn expected_markers(dir: &Path) -> BTreeSet<(String, usize, String)> {
    let mut expected = BTreeSet::new();
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .expect("fixtures dir")
        .map(|e| {
            e.expect("fixture entry")
                .file_name()
                .into_string()
                .expect("utf-8 name")
        })
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert_eq!(
        names,
        ["r1.rs", "r2.rs", "r3.rs", "r4.rs", "r5.rs"],
        "one fixture file per rule"
    );
    for name in names {
        let source = std::fs::read_to_string(dir.join(&name)).expect("fixture readable");
        for (idx, line) in source.lines().enumerate() {
            if let Some(pos) = line.find("//~ ") {
                let rule = line[pos + 4..].trim().to_string();
                expected.insert((name.clone(), idx + 1, rule));
            }
        }
    }
    expected
}

fn run_fixtures() -> Report {
    let root = fixtures_dir();
    let policy = load_policy(&root.join("lint.toml")).expect("fixture policy parses");
    run(&root, &policy, &[]).expect("fixture run succeeds")
}

#[test]
fn fixtures_fire_exactly_on_marked_lines() {
    let report = run_fixtures();
    let actual: BTreeSet<(String, usize, String)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line as usize, f.rule.to_string()))
        .collect();
    let expected = expected_markers(&fixtures_dir());
    assert!(!expected.is_empty(), "markers present");
    for rule in ["R1", "R2", "R3", "R4", "R5"] {
        assert!(
            expected.iter().any(|(_, _, r)| r == rule),
            "at least one {rule} marker"
        );
    }

    let missed: Vec<_> = expected.difference(&actual).collect();
    let extra: Vec<_> = actual.difference(&expected).collect();
    assert!(
        missed.is_empty() && extra.is_empty(),
        "findings must match markers exactly\n  missed: {missed:?}\n  extra: {extra:?}"
    );
}

#[test]
fn fixture_allowlist_suppresses_exactly_one_finding() {
    let report = run_fixtures();
    // r3.rs carries one justified exception (`buffer[1..]`); it must be
    // routed to `allowed`, not `findings`, and keep its justification.
    assert_eq!(report.allowed.len(), 1);
    let allowed = &report.allowed[0];
    assert_eq!(allowed.finding.rule, "R3");
    assert_eq!(allowed.finding.file, "r3.rs");
    assert!(allowed.finding.snippet.contains("buffer[1..]"));
    assert!(allowed.justification.contains("allowlist path"));
}

fn lint_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sgf-lint"));
    cmd.arg("--root")
        .arg(fixtures_dir())
        .arg("--config")
        .arg(fixtures_dir().join("lint.toml"));
    cmd
}

#[test]
fn binary_exits_nonzero_with_rule_ids_and_locations() {
    let out = lint_cmd().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "findings => exit 1");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    for (file, line, rule) in expected_markers(&fixtures_dir()) {
        assert!(
            stdout.contains(&format!("error[{rule}]")),
            "rule id {rule} in output"
        );
        assert!(
            stdout.contains(&format!("--> {file}:{line}:")),
            "location {file}:{line} in output:\n{stdout}"
        );
    }
}

#[test]
fn binary_json_report_carries_findings_and_summary() {
    let out = lint_cmd()
        .arg("--format")
        .arg("json")
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "json format keeps the exit code"
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let expected = expected_markers(&fixtures_dir());
    for rule in ["R1", "R2", "R3", "R4", "R5"] {
        assert!(
            stdout.contains(&format!("\"rule\": \"{rule}\"")),
            "{rule} in json"
        );
    }
    assert!(stdout.contains(&format!("\"findings\": {}", expected.len())));
    assert!(
        stdout.contains("\"justification\":"),
        "allowed entry audit trail"
    );
}

#[test]
fn binary_explain_and_list_rules() {
    for rule in ["R1", "R2", "R3", "R4", "R5"] {
        let out = Command::new(env!("CARGO_BIN_EXE_sgf-lint"))
            .args(["--explain", rule])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "--explain {rule} exits 0");
        assert!(!out.stdout.is_empty(), "--explain {rule} prints rationale");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_sgf-lint"))
        .args(["--explain", "R9"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown rule is a usage error");
}

/// The acceptance gate: the shipped tree is clean under the shipped policy.
/// Runs the library directly (no cwd dependence) against the repo root.
#[test]
fn shipped_workspace_is_lint_clean() {
    let root = workspace_root();
    let policy = load_policy(&root.join("lint.toml")).expect("workspace lint.toml parses");
    let report = run(&root, &policy, &[]).expect("no stale allowlist or audit entries");
    let rendered: String = report
        .findings
        .iter()
        .map(sgf_lint::diagnostics::render_text)
        .collect();
    assert!(
        report.is_clean(),
        "shipped workspace must be lint-clean:\n{rendered}"
    );
    assert!(report.files_checked > 50, "the walk covered the workspace");
}
