//! R2 fixture: ordered-iteration discipline (no HashMap/HashSet in
//! decision-path modules).  Never compiled.
// Comment negative: HashMap here must not fire.

use std::collections::BTreeMap;
use std::collections::HashMap; //~ R2

/// Positive: HashSet in type position.
pub fn bad_set() -> std::collections::HashSet<u32> { //~ R2
    todo()
}

/// Negative: ordered containers are the point.
pub fn good_map() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

/// Negative: the name inside a string literal.
pub fn in_string() -> &'static str {
    "HashMap and HashSet are forbidden here"
}

fn todo() -> std::collections::HashSet<u32> { //~ R2
    unreachable_helper()
}

fn unreachable_helper() -> std::collections::HashSet<u32> { //~ R2
    loop {}
}

#[cfg(test)]
mod tests {
    /// Negative: test-only scratch maps are exempt.
    use std::collections::HashMap;
    pub fn exempt() -> HashMap<u8, u8> {
        HashMap::new()
    }
}
