//! R4 fixture: RNG discipline.  Never compiled.
// Comment negative: fn fake(rng: &mut StdRng) in a comment must not fire.

/// Positive: takes `&mut` a concrete RNG type but is not in the audited list.
pub fn unaudited(rng: &mut StdRng) -> u32 { //~ R4
    rng.next_u32()
}

/// Positive: RNG reached through a bounded generic parameter.
pub fn unaudited_generic<R: Rng + ?Sized>(data: &[f64], rng: &mut R) -> f64 { //~ R4
    data[rng.gen_range(0..data.len())]
}

/// Positive: `dyn` trait-object form.
pub fn unaudited_dyn(rng: &mut dyn RngCore) -> u32 { //~ R4
    rng.next_u32()
}

/// Negative: listed in `[rules.R4] audited` of the fixture policy.
pub fn audited_fn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen()
}

/// Negative: immutable RNG borrow cannot consume draws.
pub fn readonly(rng: &StdRng) -> usize {
    std::mem::size_of_val(rng)
}

/// Negative: `&mut` of a non-RNG type.
pub fn not_rng(buf: &mut Vec<u8>) {
    buf.clear();
}

/// Negative: signature text inside a string literal.
pub fn in_string() -> &'static str {
    "fn stringy(rng: &mut StdRng)"
}

#[cfg(test)]
mod tests {
    /// Negative: test helpers may take RNGs without an audit entry.
    pub fn exempt(rng: &mut StdRng) -> u32 {
        rng.next_u32()
    }
}
