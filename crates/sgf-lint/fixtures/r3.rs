//! R3 fixture: panic-free serving.  Never compiled.
// Comment negative: .unwrap() and panic!("boom") here must not fire.

/// Positive: unwrap on a request path.
pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() //~ R3
}

/// Positive: expect on a request path.
pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("present") //~ R3
}

/// Positive: panic-family macro.
pub fn bad_panic(flag: bool) {
    if flag {
        panic!("connection state corrupted"); //~ R3
    }
}

/// Positive: slice indexing without `.get(..)`.
pub fn bad_index(xs: &[u8]) -> u8 {
    xs[0] //~ R3
}

/// Negative via the allowlist: the fixture policy carries a justified
/// exception for this exact pattern.
pub fn allowed_index(buffer: &[u8]) -> &[u8] {
    &buffer[1..]
}

/// Negative: checked access and error plumbing.
pub fn good(xs: &[u8]) -> Option<u8> {
    xs.get(0).copied()
}

/// Negative: the patterns inside string literals.
pub fn in_string() -> &'static str {
    "call .unwrap() or panic!(now) or xs[0]"
}

/// Negative: a local fn *named* expect is not `Option::expect`.
pub fn expect(code: u32) -> u32 {
    code
}

#[cfg(test)]
mod tests {
    /// Negative: test assertions may unwrap and index freely.
    pub fn exempt(xs: &[u8]) -> u8 {
        let first = xs.get(0).copied().unwrap();
        first + xs[0]
    }
}
