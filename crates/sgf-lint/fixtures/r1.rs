//! R1 fixture: float-comparator soundness.
//! Never compiled — walked only by the sgf-lint fixture tests.
// Comment negative: v.sort_by(|a, b| a.partial_cmp(b).unwrap()) must not fire.

/// Positive: non-total comparator inside a sort closure.
pub fn bad_sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ R1
}

/// Positive: `expect` flavour, different comparator method.
pub fn bad_max(v: &[f64]) -> Option<&f64> {
    v.iter().max_by(|a, b| a.partial_cmp(b).expect("finite")) //~ R1
}

/// Negative: total order.
pub fn good_sort(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

/// Negative: the offending pattern inside a string literal.
pub fn in_string() -> &'static str {
    "v.sort_by(|a, b| a.partial_cmp(b).unwrap())"
}

/// Negative: raw string literal.
pub fn in_raw_string() -> &'static str {
    r#"xs.min_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal))"#
}

/// Negative: partial_cmp without a comparator context is fine.
pub fn plain_partial(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b)
}

#[cfg(test)]
mod tests {
    /// Negative: test code is exempt from R1.
    pub fn exempt(v: &mut [f64]) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
