//! R5 fixture: accounting casts.  Never compiled.
// Comment negative: `n as f64` in a comment must not fire.

/// Positive: raw count-to-float cast in accounting arithmetic.
pub fn bad_count(n: usize) -> f64 {
    n as f64 //~ R5
}

/// Positive: raw float-to-integer truncation.
pub fn bad_trunc(x: f64) -> usize {
    x.ceil() as usize //~ R5
}

/// Negative: `as` import renaming is not a numeric cast.
pub use std::collections::BTreeMap as OrderedMap;

/// Negative: lossless From conversion.
pub fn good(n: u32) -> f64 {
    f64::from(n)
}

/// Negative: the cast inside a string literal.
pub fn in_string() -> &'static str {
    "releases as f64"
}

#[cfg(test)]
mod tests {
    /// Negative: test arithmetic is exempt.
    pub fn exempt(n: usize) -> f64 {
        n as f64
    }
}
