//! Differential-privacy bookkeeping: (ε, δ) parameters and the composition
//! theorems used by the privacy analysis of Section 3.5 (Appendix A).

use serde::{Deserialize, Serialize};

/// An (ε, δ) differential-privacy guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpBudget {
    /// Multiplicative privacy-loss bound ε.
    pub epsilon: f64,
    /// Additive failure probability δ.
    pub delta: f64,
}

impl DpBudget {
    /// A pure ε-DP guarantee (δ = 0).
    pub fn pure(epsilon: f64) -> Self {
        DpBudget {
            epsilon,
            delta: 0.0,
        }
    }

    /// Construct an (ε, δ) guarantee.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        DpBudget { epsilon, delta }
    }

    /// Whether both parameters are finite, non-negative, and δ ≤ 1.
    pub fn is_valid(&self) -> bool {
        self.epsilon.is_finite()
            && self.epsilon >= 0.0
            && self.delta.is_finite()
            && (0.0..=1.0).contains(&self.delta)
    }

    /// Pointwise maximum of two budgets — the guarantee when two mechanisms
    /// run on *disjoint* datasets (used to combine structure and parameter
    /// learning over the non-overlapping D_T and D_P, Section 3.5).
    pub fn max(self, other: DpBudget) -> DpBudget {
        DpBudget {
            epsilon: self.epsilon.max(other.epsilon),
            delta: self.delta.max(other.delta),
        }
    }
}

/// Sequential composition (Theorem 2 / Theorem 3.16 of Dwork-Roth): running
/// mechanisms with budgets `parts` on the same dataset costs the sum of the
/// εs and the sum of the δs.
pub fn sequential_composition(parts: &[DpBudget]) -> DpBudget {
    DpBudget {
        epsilon: parts.iter().map(|b| b.epsilon).sum(),
        delta: parts.iter().map(|b| b.delta).sum(),
    }
}

/// Advanced ("strong") composition (Theorem 3 / Theorem 3.20 of Dwork-Roth):
/// `k` adaptive invocations of an (ε, δ)-DP mechanism are
/// (ε', kδ + δ_slack)-DP with
/// `ε' = ε sqrt(2 k ln(1/δ_slack)) + k ε (e^ε − 1)`.
pub fn advanced_composition(epsilon: f64, delta: f64, k: u64, delta_slack: f64) -> DpBudget {
    assert!(
        delta_slack > 0.0 && delta_slack < 1.0,
        "delta_slack must lie in (0, 1)"
    );
    assert!(
        epsilon >= 0.0 && delta >= 0.0,
        "per-invocation parameters must be non-negative"
    );
    let k_f = k as f64;
    let epsilon_total = epsilon * (2.0 * k_f * (1.0 / delta_slack).ln()).sqrt()
        + k_f * epsilon * (epsilon.exp() - 1.0);
    DpBudget {
        epsilon: epsilon_total,
        delta: k_f * delta + delta_slack,
    }
}

/// Privacy amplification by sub-sampling (Theorem 4, Li et al.): running an
/// (ε, δ)-DP mechanism on a dataset where each record was kept independently
/// with probability `p` yields (ln(1 + p(e^ε − 1)), pδ)-DP.
pub fn sampling_amplification(budget: DpBudget, sampling_rate: f64) -> DpBudget {
    assert!(
        (0.0..=1.0).contains(&sampling_rate),
        "sampling rate must lie in [0, 1], got {sampling_rate}"
    );
    DpBudget {
        epsilon: (1.0 + sampling_rate * (budget.epsilon.exp() - 1.0)).ln(),
        delta: sampling_rate * budget.delta,
    }
}

/// Privacy cost of the *structure learning* step (Section 3.5): `m(m+1)`
/// noisy entropies at ε_H each composed with the advanced theorem, plus the
/// εn_T-DP noisy record count composed sequentially.
pub fn structure_learning_budget(
    m: usize,
    epsilon_h: f64,
    epsilon_nt: f64,
    delta_slack: f64,
) -> DpBudget {
    let k = (m * (m + 1)) as u64;
    let entropies = advanced_composition(epsilon_h, 0.0, k, delta_slack);
    sequential_composition(&[entropies, DpBudget::pure(epsilon_nt)])
}

/// Privacy cost of the *parameter learning* step (Section 3.5): per-attribute
/// noisy count vectors at ε_p each (L1 sensitivity 1 across all configurations
/// of one attribute), composed over the `m` attributes with the advanced theorem.
pub fn parameter_learning_budget(m: usize, epsilon_p: f64, delta_slack: f64) -> DpBudget {
    advanced_composition(epsilon_p, 0.0, m as u64, delta_slack)
}

/// Overall generative-model budget (Section 3.5): structure and parameter
/// learning operate on the disjoint subsets D_T and D_P, so the total cost is
/// the pointwise max; optional sub-sampling amplification is applied on top.
pub fn generative_model_budget(
    structure: DpBudget,
    parameters: DpBudget,
    sampling_rate: Option<f64>,
) -> DpBudget {
    let combined = structure.max(parameters);
    match sampling_rate {
        Some(p) => sampling_amplification(combined, p),
        None => combined,
    }
}

/// Search for the largest per-entropy ε_H such that the *total* structure
/// learning budget stays below `target`.  Used by callers that start from a
/// desired end-to-end ε (e.g. "make the model ε = 1 DP") and need to split it
/// across the m(m+1) noisy entropy queries.
pub fn calibrate_epsilon_h(m: usize, epsilon_nt: f64, delta_slack: f64, target: f64) -> f64 {
    assert!(
        target > epsilon_nt,
        "target budget must exceed the record-count epsilon"
    );
    let mut lo = 0.0f64;
    let mut hi = target;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= 0.0 {
            break;
        }
        let total = structure_learning_budget(m, mid, epsilon_nt, delta_slack).epsilon;
        if total > target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// Search for the largest per-attribute ε_p such that the parameter-learning
/// budget stays below `target`.
pub fn calibrate_epsilon_p(m: usize, delta_slack: f64, target: f64) -> f64 {
    let mut lo = 0.0f64;
    let mut hi = target.max(1e-6);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= 0.0 {
            break;
        }
        let total = parameter_learning_budget(m, mid, delta_slack).epsilon;
        if total > target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_composition_sums() {
        let total = sequential_composition(&[DpBudget::new(0.5, 1e-9), DpBudget::new(0.3, 1e-9)]);
        assert!((total.epsilon - 0.8).abs() < 1e-12);
        assert!((total.delta - 2e-9).abs() < 1e-18);
    }

    #[test]
    fn advanced_composition_beats_sequential_for_many_queries() {
        let eps = 0.01;
        let k = 10_000u64;
        let adv = advanced_composition(eps, 0.0, k, 1e-9);
        let seq = eps * k as f64;
        assert!(
            adv.epsilon < seq,
            "advanced {} vs sequential {}",
            adv.epsilon,
            seq
        );
        assert!(adv.delta > 0.0);
    }

    #[test]
    fn advanced_composition_single_query_close_to_base() {
        let adv = advanced_composition(0.1, 0.0, 1, 1e-9);
        // One query still pays the sqrt term, but must be within a small factor.
        assert!(adv.epsilon < 1.0);
        assert!(adv.epsilon >= 0.1 * (2.0f64 * (1e9f64).ln()).sqrt() * 0.99);
    }

    #[test]
    fn sampling_amplification_reduces_epsilon() {
        let base = DpBudget::new(1.0, 1e-6);
        let amp = sampling_amplification(base, 0.1);
        assert!(amp.epsilon < base.epsilon);
        assert!((amp.delta - 1e-7).abs() < 1e-15);
        // p = 1 leaves the budget unchanged.
        let unchanged = sampling_amplification(base, 1.0);
        assert!((unchanged.epsilon - base.epsilon).abs() < 1e-12);
    }

    #[test]
    fn disjoint_composition_takes_max() {
        let a = DpBudget::new(0.7, 1e-9);
        let b = DpBudget::new(0.4, 1e-6);
        let c = a.max(b);
        assert_eq!(c.epsilon, 0.7);
        assert_eq!(c.delta, 1e-6);
    }

    #[test]
    fn structure_budget_grows_with_attributes() {
        let small = structure_learning_budget(3, 0.01, 0.01, 1e-9);
        let large = structure_learning_budget(11, 0.01, 0.01, 1e-9);
        assert!(large.epsilon > small.epsilon);
        assert!(small.is_valid() && large.is_valid());
    }

    #[test]
    fn calibration_hits_target_from_below() {
        let m = 11;
        let target = 1.0;
        let eps_h = calibrate_epsilon_h(m, 0.01, 1e-9, target);
        assert!(eps_h > 0.0);
        let achieved = structure_learning_budget(m, eps_h, 0.01, 1e-9).epsilon;
        assert!(achieved <= target + 1e-6, "achieved {achieved}");
        assert!(
            achieved > 0.9 * target,
            "calibration too conservative: {achieved}"
        );

        let eps_p = calibrate_epsilon_p(m, 1e-9, target);
        let achieved_p = parameter_learning_budget(m, eps_p, 1e-9).epsilon;
        assert!(achieved_p <= target + 1e-6 && achieved_p > 0.9 * target);
    }

    #[test]
    fn budget_validity_checks() {
        assert!(DpBudget::new(1.0, 1e-9).is_valid());
        assert!(!DpBudget::new(-1.0, 0.0).is_valid());
        assert!(!DpBudget::new(1.0, 1.5).is_valid());
        assert!(!DpBudget::new(f64::INFINITY, 0.0).is_valid());
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn amplification_rejects_bad_rate() {
        sampling_amplification(DpBudget::pure(1.0), 1.5);
    }
}
