//! Laplace distribution sampling and the Laplace mechanism.
//!
//! The paper adds Laplace noise in three places: the randomized privacy test
//! threshold (Privacy Test 2), the entropy values used by structure learning
//! (Eq. 8), and the CPT counts used by parameter learning (Eq. 14).  All of
//! them go through this module so that the noise scale / sensitivity pairing
//! is explicit and testable.

use rand::Rng;

/// A Laplace distribution with mean 0 and shape (scale) parameter `b > 0`,
/// i.e. density `f(z) = exp(-|z|/b) / (2b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Create a Laplace distribution with the given scale `b`.
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive and finite — the privacy
    /// parameters feeding it are validated upstream, so a bad scale here is an
    /// internal invariant violation.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "Laplace scale must be positive and finite, got {scale}"
        );
        Laplace { scale }
    }

    /// Laplace noise calibrated for `sensitivity / epsilon` (the Laplace
    /// mechanism of Dwork et al., Theorem 3.6 of the DP monograph).
    pub fn for_mechanism(sensitivity: f64, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite, got {epsilon}"
        );
        assert!(
            sensitivity.is_finite() && sensitivity > 0.0,
            "sensitivity must be positive and finite, got {sensitivity}"
        );
        Laplace::new(sensitivity / epsilon)
    }

    /// The scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draw one sample via inverse-CDF sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u uniform in (-1/2, 1/2); inverse CDF: -b * sgn(u) * ln(1 - 2|u|).
        let u: f64 = rng.gen::<f64>() - 0.5;
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }

    /// Cumulative distribution function `P(Z <= z)`.
    pub fn cdf(&self, z: f64) -> f64 {
        if z < 0.0 {
            0.5 * (z / self.scale).exp()
        } else {
            1.0 - 0.5 * (-z / self.scale).exp()
        }
    }

    /// Survival function `P(Z >= z)`.
    pub fn survival(&self, z: f64) -> f64 {
        1.0 - self.cdf(z)
    }
}

/// Apply the Laplace mechanism: return `value + Lap(sensitivity / epsilon)`.
pub fn laplace_mechanism<R: Rng + ?Sized>(
    value: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> f64 {
    value + Laplace::for_mechanism(sensitivity, epsilon).sample(rng)
}

/// Apply the Laplace mechanism to a non-negative count and clamp the result at
/// zero, as done for the CPT counts in Eq. 14 (`max(0, n + Lap(1/ε_p))`).
pub fn noisy_count<R: Rng + ?Sized>(count: u64, epsilon: f64, rng: &mut R) -> f64 {
    laplace_mechanism(count as f64, 1.0, epsilon, rng).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_mean_and_spread_match_scale() {
        let mut rng = StdRng::seed_from_u64(17);
        let lap = Laplace::new(2.0);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| lap.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mean_abs = samples.iter().map(|x| x.abs()).sum::<f64>() / n as f64;
        // E[Z] = 0, E[|Z|] = b.
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((mean_abs - 2.0).abs() < 0.08, "mean abs {mean_abs}");
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        let lap = Laplace::new(1.5);
        assert!((lap.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(lap.cdf(-3.0) < lap.cdf(-1.0));
        assert!(lap.cdf(1.0) < lap.cdf(3.0));
        assert!((lap.cdf(2.0) + lap.cdf(-2.0) - 1.0).abs() < 1e-12);
        assert!((lap.survival(2.0) - lap.cdf(-2.0)).abs() < 1e-12);
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let mut rng = StdRng::seed_from_u64(5);
        let lap = Laplace::new(1.0);
        let n = 50_000;
        let below: usize = (0..n).filter(|_| lap.sample(&mut rng) <= 1.0).count();
        let empirical = below as f64 / n as f64;
        assert!((empirical - lap.cdf(1.0)).abs() < 0.01);
    }

    #[test]
    fn mechanism_scale_is_sensitivity_over_epsilon() {
        let lap = Laplace::for_mechanism(0.5, 0.1);
        assert!((lap.scale() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_count_is_never_negative() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            assert!(noisy_count(0, 0.5, &mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "Laplace scale must be positive")]
    fn zero_scale_panics() {
        Laplace::new(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_panics() {
        Laplace::for_mechanism(1.0, 0.0);
    }
}
