//! # sgf-stats
//!
//! Statistics substrate for the SGF reproduction of *Plausible Deniability for
//! Privacy-Preserving Data Synthesis* (VLDB 2017): histograms, entropy and the
//! symmetrical-uncertainty correlation of Eq. 5, the Laplace mechanism,
//! Gamma/Dirichlet/multinomial samplers for the parameter prior of Section 3.4,
//! total-variation distance for the utility evaluation, the DP composition
//! theorems of Appendix A, and deterministic per-configuration RNG seeding.

pub mod composition;
pub mod config_rng;
pub mod distance;
pub mod entropy;
pub mod histogram;
pub mod laplace;
pub mod sampling;

pub use composition::{
    advanced_composition, calibrate_epsilon_h, calibrate_epsilon_p, generative_model_budget,
    parameter_learning_budget, sampling_amplification, sequential_composition,
    structure_learning_budget, DpBudget,
};
pub use config_rng::{configuration_rng, configuration_seed, fnv1a_hash};
pub use distance::{
    attribute_distances, js_divergence, kl_divergence, pairwise_distances, total_variation,
    total_variation_histograms, FiveNumberSummary,
};
pub use entropy::{
    conditional_entropy, entropy, entropy_from_counts, entropy_from_probabilities,
    entropy_sensitivity, joint_entropy, mutual_information, symmetrical_uncertainty,
    symmetrical_uncertainty_from_entropies,
};
pub use histogram::{Histogram, JointHistogram};
pub use laplace::{laplace_mechanism, noisy_count, Laplace};
pub use sampling::{
    dirichlet_posterior_mean, sample_categorical, sample_dirichlet, sample_gamma,
    sample_multinomial,
};
