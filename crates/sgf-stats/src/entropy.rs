//! Entropy, mutual information, and the symmetrical uncertainty coefficient.
//!
//! Structure learning (Section 3.3) scores candidate parent sets with the
//! Correlation-based Feature Selection merit, whose correlation measure is the
//! *symmetrical uncertainty coefficient* (Eq. 5):
//!
//! ```text
//! corr(x_i, x_j) = 2 - 2 * H(x_i, x_j) / (H(x_i) + H(x_j))
//! ```
//!
//! The DP variant adds Laplace noise to each entropy term; the noise scale is
//! the entropy sensitivity bound of Lemma 1 (Appendix B), reproduced here as
//! [`entropy_sensitivity`].

use crate::histogram::{Histogram, JointHistogram};

/// Shannon entropy (base 2) of a probability vector.  Zero-probability bins
/// contribute nothing, matching the convention `0 log 0 = 0`.
pub fn entropy_from_probabilities(probabilities: &[f64]) -> f64 {
    probabilities
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.log2())
        .sum()
}

/// Shannon entropy (base 2) of a histogram's empirical distribution.
pub fn entropy(histogram: &Histogram) -> f64 {
    entropy_from_probabilities(&histogram.probabilities())
}

/// Shannon entropy (base 2) directly from a borrowed count vector — the
/// allocation-free path used by delta-maintained sufficient statistics.
///
/// Performs the identical floating-point operation sequence as
/// [`entropy`] over [`Histogram::from_counts`] (normalize each bin in
/// order, skip zero-probability bins, sum `-p log2 p`), so the result is
/// bit-identical; an all-zero vector yields the uniform convention of
/// [`Histogram::probabilities`].
pub fn entropy_from_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        let p = 1.0 / counts.len().max(1) as f64;
        return counts.iter().map(|_| -p * p.log2()).sum();
    }
    // Zero-count bins are filtered out of the sum either way (`0 / total`
    // is exactly `0.0`), so skipping them before the division changes no
    // bits of the result — it only spares sparse tables the per-cell work.
    counts
        .iter()
        .filter(|&&c| c != 0)
        .map(|&c| c as f64 / total as f64)
        .filter(|&p| p > 0.0)
        .map(|p| -p * p.log2())
        .sum()
}

/// Joint Shannon entropy (base 2) of a pair of variables.
pub fn joint_entropy(joint: &JointHistogram) -> f64 {
    entropy_from_probabilities(&joint.probabilities())
}

/// Mutual information `I(X;Y) = H(X) + H(Y) - H(X,Y)` in bits (clamped at 0 to
/// absorb floating-point cancellation).
pub fn mutual_information(joint: &JointHistogram) -> f64 {
    let hx = entropy(&joint.row_marginal());
    let hy = entropy(&joint.col_marginal());
    let hxy = joint_entropy(joint);
    (hx + hy - hxy).max(0.0)
}

/// The symmetrical uncertainty coefficient of Eq. 5 computed from the exact
/// (non-private) entropies.  Lies in `[0, 1]`: 0 for independent variables,
/// 1 when either determines the other.
pub fn symmetrical_uncertainty(joint: &JointHistogram) -> f64 {
    let hx = entropy(&joint.row_marginal());
    let hy = entropy(&joint.col_marginal());
    let hxy = joint_entropy(joint);
    symmetrical_uncertainty_from_entropies(hx, hy, hxy)
}

/// The symmetrical uncertainty coefficient computed from (possibly noisy)
/// entropy values, clamped into `[0, 1]` as required by Section 3.3.1
/// ("we also need to make sure that the correlation metric remains in the
/// \[0,1\] range, after using noisy entropy values").
pub fn symmetrical_uncertainty_from_entropies(h_x: f64, h_y: f64, h_xy: f64) -> f64 {
    let denom = h_x + h_y;
    if denom <= f64::EPSILON {
        // Both variables are (nearly) constant: define the correlation as 0.
        return 0.0;
    }
    let corr = 2.0 - 2.0 * h_xy / denom;
    corr.clamp(0.0, 1.0)
}

/// Upper bound on the L1 sensitivity of the entropy of a histogram estimated
/// from `n` records (Lemma 1, Appendix B):
///
/// ```text
/// ΔH <= (2 + 1/ln 2 + 2 log2 n) / n
/// ```
///
/// Returns infinity for `n == 0` (an empty dataset gives no meaningful bound).
pub fn entropy_sensitivity(n: u64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    let n = n as f64;
    (2.0 + 1.0 / std::f64::consts::LN_2 + 2.0 * n.log2()) / n
}

/// Conditional entropy `H(Y | X)` in bits, where `X` indexes the rows of the
/// joint histogram.
pub fn conditional_entropy(joint: &JointHistogram) -> f64 {
    joint_entropy(joint) - entropy(&joint.row_marginal())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joint_from(pairs: &[(u16, u16)], rows: usize, cols: usize) -> JointHistogram {
        JointHistogram::from_pairs(rows, cols, pairs.iter().copied())
    }

    #[test]
    fn uniform_entropy_is_log_of_bins() {
        let h = Histogram::from_values(4, [0u16, 1, 2, 3]);
        assert!((entropy(&h) - 2.0).abs() < 1e-12);
        let h8 = Histogram::from_values(8, 0..8u16);
        assert!((entropy(&h8) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_entropy_is_zero() {
        let h = Histogram::from_values(5, [2u16; 10]);
        assert_eq!(entropy(&h), 0.0);
    }

    #[test]
    fn entropy_of_biased_coin() {
        let h = Histogram::from_values(2, [0u16, 0, 0, 1]);
        // H(0.75, 0.25) = 0.811278...
        assert!((entropy(&h) - 0.8112781244591328).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_zero_for_independent() {
        // X uniform over {0,1}, Y uniform over {0,1}, independent.
        let pairs: Vec<(u16, u16)> = (0..2).flat_map(|a| (0..2).map(move |b| (a, b))).collect();
        let j = joint_from(&pairs, 2, 2);
        assert!(mutual_information(&j).abs() < 1e-12);
        assert!(symmetrical_uncertainty(&j).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_maximal_for_identical() {
        let pairs: Vec<(u16, u16)> = (0..4u16).map(|a| (a, a)).collect();
        let j = joint_from(&pairs, 4, 4);
        assert!((mutual_information(&j) - 2.0).abs() < 1e-12);
        assert!((symmetrical_uncertainty(&j) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetrical_uncertainty_clamps_noisy_inputs() {
        assert_eq!(symmetrical_uncertainty_from_entropies(1.0, 1.0, 3.0), 0.0);
        assert_eq!(symmetrical_uncertainty_from_entropies(1.0, 1.0, -0.5), 1.0);
        assert_eq!(symmetrical_uncertainty_from_entropies(0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn conditional_entropy_identity() {
        let pairs: Vec<(u16, u16)> = (0..4u16).map(|a| (a, a)).collect();
        let j = joint_from(&pairs, 4, 4);
        assert!(conditional_entropy(&j).abs() < 1e-12);
    }

    #[test]
    fn sensitivity_matches_lemma_formula() {
        let n = 1000u64;
        let expected = (2.0 + 1.0 / std::f64::consts::LN_2 + 2.0 * (1000f64).log2()) / 1000.0;
        assert!((entropy_sensitivity(n) - expected).abs() < 1e-15);
        assert!(entropy_sensitivity(0).is_infinite());
        // Sensitivity decreases with n.
        assert!(entropy_sensitivity(100) > entropy_sensitivity(10_000));
    }

    #[test]
    fn entropy_from_probabilities_ignores_zeros() {
        let h = entropy_from_probabilities(&[0.5, 0.5, 0.0, 0.0]);
        assert!((h - 1.0).abs() < 1e-12);
    }
}
