//! Deterministic per-configuration random number generators.
//!
//! Section 5 of the paper: the tool learns the DP parameters of each CPT
//! configuration lazily, as workers encounter it, and "to ensure that the
//! privacy guarantee holds we set the RNG seed number to be a deterministic
//! function (i.e., a hash) of the configuration".  That way two concurrent
//! workers hitting the same configuration add *identical* Laplace noise and
//! the noisy counts remain a well-defined function of the dataset.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// 64-bit FNV-1a hash (stable across platforms and Rust versions, unlike
/// `DefaultHasher`), used to derive per-configuration RNG seeds.
pub fn fnv1a_hash(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Derive a deterministic seed from a namespace, an attribute index, and a
/// parent-configuration index, mixed with a global seed.
pub fn configuration_seed(
    global_seed: u64,
    namespace: &str,
    attribute: usize,
    configuration: u64,
) -> u64 {
    let mut bytes = Vec::with_capacity(namespace.len() + 24);
    bytes.extend_from_slice(namespace.as_bytes());
    bytes.extend_from_slice(&global_seed.to_le_bytes());
    bytes.extend_from_slice(&(attribute as u64).to_le_bytes());
    bytes.extend_from_slice(&configuration.to_le_bytes());
    fnv1a_hash(&bytes)
}

/// A deterministic RNG for the given configuration.
pub fn configuration_rng(
    global_seed: u64,
    namespace: &str,
    attribute: usize,
    configuration: u64,
) -> StdRng {
    StdRng::seed_from_u64(configuration_seed(
        global_seed,
        namespace,
        attribute,
        configuration,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_hash(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_hash(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn same_configuration_same_stream() {
        let mut a = configuration_rng(7, "params", 3, 42);
        let mut b = configuration_rng(7, "params", 3, 42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_configurations_differ() {
        let base = configuration_seed(7, "params", 3, 42);
        assert_ne!(base, configuration_seed(7, "params", 3, 43));
        assert_ne!(base, configuration_seed(7, "params", 4, 42));
        assert_ne!(base, configuration_seed(8, "params", 3, 42));
        assert_ne!(base, configuration_seed(7, "structure", 3, 42));
    }
}
