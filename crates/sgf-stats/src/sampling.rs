//! Gamma, Dirichlet, multinomial, and categorical sampling.
//!
//! Parameter learning (Section 3.4) places a Dirichlet prior over the
//! multinomial parameters of each conditional probability table and *samples*
//! a parameter vector from the posterior "in order to increase the variety of
//! data samples".  The Dirichlet sampler here is built on a Marsaglia–Tsang
//! Gamma sampler so the crate stays dependency-light.

use rand::Rng;

/// Sample from a Gamma distribution with the given `shape` (k > 0) and unit scale,
/// using the Marsaglia–Tsang squeeze method (with the standard boost for shape < 1).
pub fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    assert!(
        shape.is_finite() && shape > 0.0,
        "gamma shape must be positive, got {shape}"
    );
    if shape < 1.0 {
        // Boosting: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box-Muller.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen::<f64>();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Sample a probability vector from a Dirichlet distribution with the given
/// concentration parameters (all must be strictly positive).
pub fn sample_dirichlet<R: Rng + ?Sized>(alphas: &[f64], rng: &mut R) -> Vec<f64> {
    assert!(
        !alphas.is_empty(),
        "Dirichlet needs at least one concentration parameter"
    );
    let gammas: Vec<f64> = alphas.iter().map(|&a| sample_gamma(a, rng)).collect();
    let total: f64 = gammas.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // Degenerate draw (can only happen with pathological concentrations);
        // fall back to the normalized concentration vector itself.
        let s: f64 = alphas.iter().sum();
        return alphas.iter().map(|&a| a / s).collect();
    }
    gammas.iter().map(|&g| g / total).collect()
}

/// Sample an index from an explicit (not necessarily normalized) non-negative
/// weight vector.  At least one weight must be strictly positive.
pub fn sample_categorical<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "categorical weights must have a positive finite sum"
    );
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Sample a multinomial count vector: `n` independent categorical draws.
pub fn sample_multinomial<R: Rng + ?Sized>(n: u64, probabilities: &[f64], rng: &mut R) -> Vec<u64> {
    let mut counts = vec![0u64; probabilities.len()];
    for _ in 0..n {
        counts[sample_categorical(probabilities, rng)] += 1;
    }
    counts
}

/// Posterior mean of a Dirichlet-multinomial model (Eq. 13):
/// `p[l] = (alpha[l] + n[l]) / (sum alpha + sum n)`.
pub fn dirichlet_posterior_mean(alphas: &[f64], counts: &[f64]) -> Vec<f64> {
    assert_eq!(
        alphas.len(),
        counts.len(),
        "alpha and count vectors must have equal length"
    );
    let total: f64 = alphas.iter().sum::<f64>() + counts.iter().sum::<f64>();
    if total <= 0.0 {
        let n = alphas.len().max(1);
        return vec![1.0 / n as f64; alphas.len()];
    }
    alphas
        .iter()
        .zip(counts.iter())
        .map(|(&a, &c)| (a + c) / total)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(21);
        for &shape in &[0.5, 1.0, 3.0, 9.5] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.12 * shape.max(1.0),
                "shape {shape}: empirical mean {mean}"
            );
        }
    }

    #[test]
    fn gamma_samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            assert!(sample_gamma(0.3, &mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        sample_gamma(0.0, &mut rng);
    }

    #[test]
    fn dirichlet_samples_are_simplex_points() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let p = sample_dirichlet(&[1.0, 2.0, 0.5, 4.0], &mut rng);
            assert_eq!(p.len(), 4);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_mean_tracks_concentration() {
        let mut rng = StdRng::seed_from_u64(6);
        let alphas = [8.0, 1.0, 1.0];
        let n = 5_000;
        let mut mean = vec![0.0; 3];
        for _ in 0..n {
            let p = sample_dirichlet(&alphas, &mut rng);
            for (m, &x) in mean.iter_mut().zip(p.iter()) {
                *m += x / n as f64;
            }
        }
        assert!((mean[0] - 0.8).abs() < 0.02, "mean {mean:?}");
        assert!((mean[1] - 0.1).abs() < 0.02);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_categorical(&[1.0, 0.0, 3.0], &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / 30_000.0;
        assert!((frac0 - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn categorical_rejects_all_zero_weights() {
        let mut rng = StdRng::seed_from_u64(8);
        sample_categorical(&[0.0, 0.0], &mut rng);
    }

    #[test]
    fn multinomial_counts_sum_to_n() {
        let mut rng = StdRng::seed_from_u64(9);
        let counts = sample_multinomial(1000, &[0.2, 0.3, 0.5], &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn posterior_mean_matches_formula() {
        let p = dirichlet_posterior_mean(&[1.0, 1.0], &[3.0, 1.0]);
        assert!((p[0] - 4.0 / 6.0).abs() < 1e-12);
        assert!((p[1] - 2.0 / 6.0).abs() < 1e-12);
        let empty = dirichlet_posterior_mean(&[0.0, 0.0], &[0.0, 0.0]);
        assert!((empty[0] - 0.5).abs() < 1e-12);
    }
}
