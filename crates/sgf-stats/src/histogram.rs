//! Histograms and contingency tables over discrete attributes.
//!
//! Entropy, correlation, statistical distance, and the marginal/conditional
//! probability estimates all start from counting value (or value-pair)
//! frequencies; this module centralizes that counting.

use sgf_data::{Bucketizer, Dataset};

/// Counts of a single discrete variable over a fixed domain `0..cardinality`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// An all-zero histogram over `cardinality` bins.
    pub fn empty(cardinality: usize) -> Self {
        Histogram {
            counts: vec![0; cardinality],
            total: 0,
        }
    }

    /// Build directly from per-bin counts — the path used by delta-maintained
    /// sufficient statistics.  Produces a histogram bit-identical to
    /// accumulating the same counts through [`Self::add`].
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let total = counts.iter().sum();
        Histogram { counts, total }
    }

    /// Build a histogram from an iterator of value indices.
    pub fn from_values<I: IntoIterator<Item = u16>>(cardinality: usize, values: I) -> Self {
        let mut h = Histogram::empty(cardinality);
        for v in values {
            h.add(v);
        }
        h
    }

    /// Histogram of one dataset column.
    pub fn from_column(dataset: &Dataset, attr: usize) -> Self {
        Histogram::from_values(dataset.schema().cardinality(attr), dataset.column(attr))
    }

    /// Histogram of one dataset column after bucketization.
    pub fn from_column_bucketized(dataset: &Dataset, attr: usize, bkt: &Bucketizer) -> Self {
        Histogram::from_values(
            bkt.bucket_count(attr),
            dataset.column(attr).map(|v| bkt.bucket_of(attr, v)),
        )
    }

    /// Increment the count of bin `v`.
    pub fn add(&mut self, v: u16) {
        self.counts[v as usize] += 1;
        self.total += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `v`.
    pub fn count(&self, v: usize) -> u64 {
        self.counts[v]
    }

    /// All counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalize into a probability vector; an empty histogram yields the uniform distribution.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            let n = self.counts.len().max(1);
            return vec![1.0 / n as f64; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Probability of bin `v` (0 for an empty histogram handled via `probabilities`).
    pub fn probability(&self, v: usize) -> f64 {
        if self.total == 0 {
            1.0 / self.counts.len().max(1) as f64
        } else {
            self.counts[v] as f64 / self.total as f64
        }
    }

    /// Index of the most frequent bin (ties resolved to the lowest index).
    pub fn mode(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Joint counts of a pair of discrete variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointHistogram {
    counts: Vec<u64>,
    rows: usize,
    cols: usize,
    total: u64,
}

impl JointHistogram {
    /// An all-zero joint histogram with domains `rows x cols`.
    pub fn empty(rows: usize, cols: usize) -> Self {
        JointHistogram {
            counts: vec![0; rows * cols],
            rows,
            cols,
            total: 0,
        }
    }

    /// Build directly from per-cell counts (row-major) — the path used by
    /// delta-maintained sufficient statistics.  Produces a histogram
    /// bit-identical to accumulating the same counts through [`Self::add`].
    pub fn from_counts(rows: usize, cols: usize, counts: Vec<u64>) -> Self {
        assert_eq!(counts.len(), rows * cols, "count vector must be rows*cols");
        let total = counts.iter().sum();
        JointHistogram {
            counts,
            rows,
            cols,
            total,
        }
    }

    /// Build from an iterator of value pairs.
    pub fn from_pairs<I: IntoIterator<Item = (u16, u16)>>(
        rows: usize,
        cols: usize,
        pairs: I,
    ) -> Self {
        let mut h = JointHistogram::empty(rows, cols);
        for (a, b) in pairs {
            h.add(a, b);
        }
        h
    }

    /// Joint histogram of two dataset columns.
    pub fn from_columns(dataset: &Dataset, attr_a: usize, attr_b: usize) -> Self {
        let rows = dataset.schema().cardinality(attr_a);
        let cols = dataset.schema().cardinality(attr_b);
        JointHistogram::from_pairs(
            rows,
            cols,
            dataset
                .records()
                .iter()
                .map(|r| (r.get(attr_a), r.get(attr_b))),
        )
    }

    /// Joint histogram of two columns where the *second* is bucketized
    /// (the `H(x_i, bkt(x_j))` case of Section 3.3.1).
    pub fn from_columns_bucketized_second(
        dataset: &Dataset,
        attr_a: usize,
        attr_b: usize,
        bkt: &Bucketizer,
    ) -> Self {
        let rows = dataset.schema().cardinality(attr_a);
        let cols = bkt.bucket_count(attr_b);
        JointHistogram::from_pairs(
            rows,
            cols,
            dataset
                .records()
                .iter()
                .map(|r| (r.get(attr_a), bkt.bucket_of(attr_b, r.get(attr_b)))),
        )
    }

    /// Increment the count of the pair `(a, b)`.
    pub fn add(&mut self, a: u16, b: u16) {
        self.counts[a as usize * self.cols + b as usize] += 1;
        self.total += 1;
    }

    /// Count of the pair `(a, b)`.
    pub fn count(&self, a: usize, b: usize) -> u64 {
        self.counts[a * self.cols + b]
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of row bins.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of column bins.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flatten into a single histogram over `rows * cols` joint bins.
    pub fn flatten(&self) -> Histogram {
        Histogram {
            counts: self.counts.clone(),
            total: self.total,
        }
    }

    /// Marginal histogram of the row variable.
    pub fn row_marginal(&self) -> Histogram {
        let mut counts = vec![0u64; self.rows];
        for (a, count) in counts.iter_mut().enumerate() {
            for b in 0..self.cols {
                *count += self.count(a, b);
            }
        }
        Histogram {
            counts,
            total: self.total,
        }
    }

    /// Marginal histogram of the column variable.
    pub fn col_marginal(&self) -> Histogram {
        let mut counts = vec![0u64; self.cols];
        for a in 0..self.rows {
            for (b, count) in counts.iter_mut().enumerate() {
                *count += self.count(a, b);
            }
        }
        Histogram {
            counts,
            total: self.total,
        }
    }

    /// Joint probability of `(a, b)`.
    pub fn probability(&self, a: usize, b: usize) -> f64 {
        if self.total == 0 {
            1.0 / (self.rows * self.cols).max(1) as f64
        } else {
            self.count(a, b) as f64 / self.total as f64
        }
    }

    /// Full joint probability vector (row-major).
    pub fn probabilities(&self) -> Vec<f64> {
        self.flatten().probabilities()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgf_data::{Attribute, Dataset, Record, Schema};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                Attribute::categorical("A", &["a0", "a1", "a2"]),
                Attribute::categorical("B", &["b0", "b1"]),
            ])
            .unwrap(),
        );
        let records = vec![
            Record::new(vec![0, 0]),
            Record::new(vec![0, 1]),
            Record::new(vec![1, 1]),
            Record::new(vec![2, 1]),
            Record::new(vec![2, 1]),
        ];
        Dataset::from_records_unchecked(schema, records)
    }

    #[test]
    fn histogram_counts_and_probabilities() {
        let d = dataset();
        let h = Histogram::from_column(&d, 0);
        assert_eq!(h.counts(), &[2, 1, 2]);
        assert_eq!(h.total(), 5);
        let p = h.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h.probability(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_uniform() {
        let h = Histogram::empty(4);
        let p = h.probabilities();
        assert!(p.iter().all(|&x| (x - 0.25).abs() < 1e-12));
        assert!((h.probability(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mode_breaks_ties_to_lowest_index() {
        let h = Histogram::from_values(3, [0u16, 0, 2, 2, 1]);
        assert_eq!(h.mode(), 0);
        let h2 = Histogram::from_values(3, [1u16, 1, 0]);
        assert_eq!(h2.mode(), 1);
    }

    #[test]
    fn joint_histogram_marginals_are_consistent() {
        let d = dataset();
        let j = JointHistogram::from_columns(&d, 0, 1);
        assert_eq!(j.count(2, 1), 2);
        assert_eq!(j.count(1, 0), 0);
        assert_eq!(
            j.row_marginal().counts(),
            Histogram::from_column(&d, 0).counts()
        );
        assert_eq!(
            j.col_marginal().counts(),
            Histogram::from_column(&d, 1).counts()
        );
        let p = j.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flatten_preserves_total() {
        let d = dataset();
        let j = JointHistogram::from_columns(&d, 0, 1);
        let flat = j.flatten();
        assert_eq!(flat.total(), j.total());
        assert_eq!(flat.bins(), 6);
    }

    #[test]
    fn bucketized_histograms_use_bucket_domains() {
        let schema = Arc::new(
            Schema::new(vec![
                Attribute::numerical("AGE", 0, 19),
                Attribute::categorical("B", &["b0", "b1"]),
            ])
            .unwrap(),
        );
        let records = (0..20u16).map(|v| Record::new(vec![v, v % 2])).collect();
        let d = Dataset::from_records_unchecked(schema, records);
        let bkt = sgf_data::Bucketizer::identity(d.schema())
            .with_attribute(0, sgf_data::AttributeBuckets::fixed_width(20, 10).unwrap())
            .unwrap();
        let h = Histogram::from_column_bucketized(&d, 0, &bkt);
        assert_eq!(h.bins(), 2);
        assert_eq!(h.counts(), &[10, 10]);
        let j = JointHistogram::from_columns_bucketized_second(&d, 1, 0, &bkt);
        assert_eq!(j.rows(), 2);
        assert_eq!(j.cols(), 2);
        assert_eq!(j.count(0, 0), 5);
    }
}
