//! Statistical distance measures between discrete distributions.
//!
//! The statistical-utility evaluation (Figures 3 and 4) compares the
//! per-attribute and per-attribute-pair distributions of real, marginal, and
//! synthetic datasets using the total-variation ("the" statistical) distance.

use crate::histogram::{Histogram, JointHistogram};
use sgf_data::Dataset;

/// Total-variation (statistical) distance between two probability vectors:
/// `0.5 * sum_i |p_i - q_i|`, always in `[0, 1]`.
///
/// # Panics
/// Panics if the vectors have different lengths (they must be distributions
/// over the same domain).
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share a domain");
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Total-variation distance between the empirical distributions of two histograms.
pub fn total_variation_histograms(a: &Histogram, b: &Histogram) -> f64 {
    total_variation(&a.probabilities(), &b.probabilities())
}

/// Kullback-Leibler divergence `KL(p || q)` in bits.  Returns infinity when
/// `p` puts mass where `q` does not.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share a domain");
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return f64::INFINITY;
        }
        kl += pi * (pi / qi).log2();
    }
    kl.max(0.0)
}

/// Jensen-Shannon divergence in bits (symmetric, bounded by 1).
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share a domain");
    let m: Vec<f64> = p.iter().zip(q.iter()).map(|(a, b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Per-attribute total-variation distance between two datasets over the same
/// schema (the quantity box-plotted in Figure 3).
pub fn attribute_distances(a: &Dataset, b: &Dataset) -> Vec<f64> {
    assert_eq!(
        a.schema(),
        b.schema(),
        "datasets must share a schema to compare attribute distributions"
    );
    (0..a.schema().len())
        .map(|attr| {
            total_variation_histograms(
                &Histogram::from_column(a, attr),
                &Histogram::from_column(b, attr),
            )
        })
        .collect()
}

/// Total-variation distance between the joint distribution of every
/// *pair* of attributes in two datasets (Figure 4).  Returns one distance per
/// unordered pair `(i, j)` with `i < j`, in lexicographic order.
pub fn pairwise_distances(a: &Dataset, b: &Dataset) -> Vec<f64> {
    assert_eq!(a.schema(), b.schema(), "datasets must share a schema");
    let m = a.schema().len();
    let mut out = Vec::with_capacity(m * (m - 1) / 2);
    for i in 0..m {
        for j in (i + 1)..m {
            let pa = JointHistogram::from_columns(a, i, j).probabilities();
            let pb = JointHistogram::from_columns(b, i, j).probabilities();
            out.push(total_variation(&pa, &pb));
        }
    }
    out
}

/// Five-number summary (min, lower quartile, median, upper quartile, max) of a
/// set of distances — the quantities a box-and-whisker plot shows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumberSummary {
    /// Minimum value.
    pub min: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
}

impl FiveNumberSummary {
    /// Compute the summary of a non-empty slice of values.
    pub fn of(values: &[f64]) -> Option<FiveNumberSummary> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        // total_cmp: a NaN distance (e.g. 0/0 from a degenerate divisor
        // upstream) sorts to the end instead of panicking mid-summary.
        v.sort_by(f64::total_cmp);
        let quantile = |q: f64| -> f64 {
            let pos = q * (v.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                let w = pos - lo as f64;
                v[lo] * (1.0 - w) + v[hi] * w
            }
        };
        Some(FiveNumberSummary {
            min: v[0],
            q1: quantile(0.25),
            median: quantile(0.5),
            q3: quantile(0.75),
            max: v[v.len() - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgf_data::{Attribute, Dataset, Record, Schema};
    use std::sync::Arc;

    #[test]
    fn tv_distance_basic_identities() {
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        let d = total_variation(&[0.7, 0.3], &[0.4, 0.6]);
        assert!((d - 0.3).abs() < 1e-12);
        // Symmetry.
        assert_eq!(d, total_variation(&[0.4, 0.6], &[0.7, 0.3]));
    }

    #[test]
    #[should_panic(expected = "share a domain")]
    fn tv_distance_rejects_mismatched_domains() {
        total_variation(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn five_number_summary_survives_nan_values() {
        // Regression: the sort comparator used
        // `partial_cmp(..).expect("distances are finite")` and panicked on
        // the first NaN (e.g. a 0/0 from a degenerate divisor upstream).
        // With total_cmp, NaNs sort after every finite value.
        let summary = FiveNumberSummary::of(&[3.0, f64::NAN, 1.0, 2.0]).unwrap();
        assert_eq!(summary.min, 1.0);
        assert_eq!(summary.median, 2.5);
        assert!(summary.max.is_nan());
        assert!(FiveNumberSummary::of(&[]).is_none());
    }

    #[test]
    fn kl_and_js_behave() {
        assert_eq!(kl_divergence(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]).is_infinite());
        let js = js_divergence(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((js - 1.0).abs() < 1e-12);
        assert!(js_divergence(&[0.5, 0.5], &[0.5, 0.5]).abs() < 1e-12);
    }

    fn two_column_dataset(rows: &[(u16, u16)]) -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                Attribute::categorical("A", &["a0", "a1"]),
                Attribute::categorical("B", &["b0", "b1"]),
            ])
            .unwrap(),
        );
        let records = rows.iter().map(|&(a, b)| Record::new(vec![a, b])).collect();
        Dataset::from_records_unchecked(schema, records)
    }

    #[test]
    fn attribute_distances_zero_for_identical_datasets() {
        let d = two_column_dataset(&[(0, 0), (1, 1), (0, 1)]);
        let dist = attribute_distances(&d, &d);
        assert_eq!(dist.len(), 2);
        assert!(dist.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn pairwise_distance_detects_broken_correlation() {
        // Same marginals, different joint: marginal distance ~0 but pair distance > 0.
        let correlated = two_column_dataset(&[(0, 0), (0, 0), (1, 1), (1, 1)]);
        let independent = two_column_dataset(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let marg = attribute_distances(&correlated, &independent);
        assert!(marg.iter().all(|&x| x.abs() < 1e-12));
        let pair = pairwise_distances(&correlated, &independent);
        assert_eq!(pair.len(), 1);
        assert!(pair[0] > 0.4);
    }

    #[test]
    fn five_number_summary_of_known_values() {
        let s = FiveNumberSummary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert!(FiveNumberSummary::of(&[]).is_none());
    }
}
