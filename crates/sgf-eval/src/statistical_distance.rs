//! Statistical-distance evaluation (Figures 3 and 4).
//!
//! Compares the per-attribute and per-attribute-pair distributions of a
//! candidate dataset (other reals, marginals, or synthetics for various ω)
//! against a reference sample of real records using the total-variation
//! distance, and summarizes each comparison as a box-plot five-number summary.

use sgf_data::Dataset;
use sgf_stats::{attribute_distances, pairwise_distances, FiveNumberSummary};

/// The distances of one candidate dataset against the reference reals.
#[derive(Debug, Clone)]
pub struct DistanceReport {
    /// Label of the candidate dataset (e.g. "reals", "marginals", "omega = 10").
    pub label: String,
    /// Per-attribute total-variation distances (Figure 3's box plot input).
    pub per_attribute: Vec<f64>,
    /// Per-attribute-pair total-variation distances (Figure 4's box plot input).
    pub per_pair: Vec<f64>,
}

impl DistanceReport {
    /// Compare `candidate` against `reference` (both over the same schema).
    pub fn compare(label: &str, reference: &Dataset, candidate: &Dataset) -> Self {
        DistanceReport {
            label: label.to_string(),
            per_attribute: attribute_distances(reference, candidate),
            per_pair: pairwise_distances(reference, candidate),
        }
    }

    /// Box-plot summary of the per-attribute distances.
    pub fn attribute_summary(&self) -> FiveNumberSummary {
        FiveNumberSummary::of(&self.per_attribute).expect("at least one attribute")
    }

    /// Box-plot summary of the per-pair distances.
    pub fn pair_summary(&self) -> FiveNumberSummary {
        FiveNumberSummary::of(&self.per_pair).expect("at least one attribute pair")
    }

    /// Mean per-attribute distance.
    pub fn mean_attribute_distance(&self) -> f64 {
        self.per_attribute.iter().sum::<f64>() / self.per_attribute.len().max(1) as f64
    }

    /// Mean per-pair distance.
    pub fn mean_pair_distance(&self) -> f64 {
        self.per_pair.iter().sum::<f64>() / self.per_pair.len().max(1) as f64
    }
}

/// Compare several labelled candidate datasets against the same reference.
pub fn compare_datasets(
    reference: &Dataset,
    candidates: &[(String, &Dataset)],
) -> Vec<DistanceReport> {
    candidates
        .iter()
        .map(|(label, candidate)| DistanceReport::compare(label, reference, candidate))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::acs::generate_acs;
    use sgf_model::{GenerativeModel, MarginalConfig, MarginalModel};

    #[test]
    fn reals_are_closer_to_reals_than_marginals_on_pairs() {
        let reference = generate_acs(4000, 31);
        let other_reals = generate_acs(4000, 32);
        let mut rng = StdRng::seed_from_u64(1);
        let marginal = MarginalModel::learn(&reference, MarginalConfig::default()).unwrap();
        let marginal_data = marginal.sample_dataset(4000, &mut rng);

        let reports = compare_datasets(
            &reference,
            &[
                ("reals".to_string(), &other_reals),
                ("marginals".to_string(), &marginal_data),
            ],
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].per_attribute.len(), 11);
        assert_eq!(reports[0].per_pair.len(), 55);
        // Pairwise distributions: independent marginal sampling destroys the
        // correlations, so its pair distance must exceed the reals-vs-reals one.
        assert!(
            reports[1].mean_pair_distance() > reports[0].mean_pair_distance(),
            "marginals {} vs reals {}",
            reports[1].mean_pair_distance(),
            reports[0].mean_pair_distance()
        );
        // Summaries are ordered.
        let s = reports[1].pair_summary();
        assert!(s.min <= s.median && s.median <= s.max);
        let a = reports[0].attribute_summary();
        assert!(a.min <= a.q1 && a.q3 <= a.max);
    }

    #[test]
    fn marginal_generation_is_a_generative_model() {
        // The MarginalModel used above also satisfies the GenerativeModel trait;
        // sanity-check the dataset sampling path used by this module's tests.
        let reference = generate_acs(500, 33);
        let marginal = MarginalModel::learn(&reference, MarginalConfig::default()).unwrap();
        assert!(!marginal.is_seed_dependent());
    }
}
