//! Privacy-test pass-rate sweep (Figure 6).
//!
//! For fixed γ, vary the plausible-deniability parameter k and the number of
//! re-sampled attributes ω, and measure the fraction of candidate synthetics
//! that pass the (deterministic) privacy test.

use rand::Rng;
use sgf_core::{Mechanism, PrivacyTestConfig};
use sgf_data::Dataset;
use sgf_model::{CptStore, OmegaSpec, SeedSynthesizer};
use std::sync::Arc;

/// Pass rates for one ω setting across a sweep of k values.
#[derive(Debug, Clone)]
pub struct PassRateSeries {
    /// The ω setting the series was measured for.
    pub omega: OmegaSpec,
    /// The k values swept.
    pub k_values: Vec<usize>,
    /// Fraction of candidates passing the test at each k.
    pub pass_rates: Vec<f64>,
}

/// Configuration of the sweep.
#[derive(Debug, Clone)]
pub struct PassRateConfig {
    /// Indistinguishability parameter γ (the paper uses 2 for Figure 6).
    pub gamma: f64,
    /// k values to sweep.
    pub k_values: Vec<usize>,
    /// ω settings to sweep.
    pub omegas: Vec<OmegaSpec>,
    /// Candidates generated per (k, ω) point.
    pub candidates_per_point: usize,
    /// `max_check_plausible` early-termination knob.
    pub max_check_plausible: Option<usize>,
}

impl Default for PassRateConfig {
    fn default() -> Self {
        PassRateConfig {
            gamma: 2.0,
            k_values: vec![10, 25, 50, 100, 150, 250],
            omegas: vec![
                OmegaSpec::Fixed(7),
                OmegaSpec::Fixed(8),
                OmegaSpec::Fixed(9),
                OmegaSpec::Fixed(10),
                OmegaSpec::UniformRange { lo: 5, hi: 11 },
            ],
            candidates_per_point: 200,
            max_check_plausible: Some(100_000),
        }
    }
}

/// Run the sweep: for every ω and k, generate candidates with the seed-based
/// synthesizer and measure the deterministic-test pass rate.
pub fn pass_rate_sweep<R: Rng + ?Sized>(
    cpts: &Arc<CptStore>,
    seeds: &Dataset,
    config: &PassRateConfig,
    rng: &mut R,
) -> Vec<PassRateSeries> {
    let m = cpts.schema().len();
    config
        .omegas
        .iter()
        .map(|&omega| {
            omega
                .validate(m)
                .expect("omega settings must be valid for the schema");
            let mut pass_rates = Vec::with_capacity(config.k_values.len());
            for &k in &config.k_values {
                let test = PrivacyTestConfig::deterministic(k, config.gamma)
                    .with_limits(None, config.max_check_plausible);
                let mut passed = 0usize;
                for _ in 0..config.candidates_per_point {
                    let w = omega.sample(rng);
                    let synthesizer =
                        SeedSynthesizer::new(Arc::clone(cpts), w).expect("validated omega");
                    let mechanism = Mechanism::new(&synthesizer, seeds, test)
                        .expect("seed dataset is large enough for every k in the sweep");
                    if mechanism
                        .propose(rng)
                        .expect("valid test configuration")
                        .released()
                    {
                        passed += 1;
                    }
                }
                pass_rates.push(passed as f64 / config.candidates_per_point as f64);
            }
            PassRateSeries {
                omega,
                k_values: config.k_values.clone(),
                pass_rates,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
    use sgf_data::{split_dataset, SplitSpec};
    use sgf_model::{learn_dependency_structure, ParameterConfig, StructureConfig};

    #[test]
    fn pass_rate_decreases_with_k_and_increases_with_omega() {
        let data = generate_acs(4000, 61);
        let bkt = acs_bucketizer(&acs_schema());
        let mut rng = StdRng::seed_from_u64(1);
        let split = split_dataset(&data, &SplitSpec::paper_defaults(), &mut rng).unwrap();
        let structure =
            learn_dependency_structure(&split.structure, &bkt, &StructureConfig::exact(), &mut rng)
                .unwrap();
        let cpts = Arc::new(
            CptStore::learn(
                &split.parameters,
                &bkt,
                &structure.graph,
                ParameterConfig::default(),
            )
            .unwrap(),
        );

        let config = PassRateConfig {
            gamma: 2.0,
            k_values: vec![5, 100],
            omegas: vec![OmegaSpec::Fixed(5), OmegaSpec::Fixed(11)],
            candidates_per_point: 60,
            max_check_plausible: Some(2000),
        };
        let series = pass_rate_sweep(&cpts, &split.seeds, &config, &mut rng);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.pass_rates.len(), 2);
            assert!(s.pass_rates.iter().all(|&r| (0.0..=1.0).contains(&r)));
            // Larger k is a stricter test.
            assert!(s.pass_rates[0] >= s.pass_rates[1]);
        }
        // Re-sampling every attribute (omega = m) yields seed-independent
        // candidates, which pass far more easily than omega = 5 at large k.
        let low_omega = &series[0];
        let high_omega = &series[1];
        assert!(
            high_omega.pass_rates[1] >= low_omega.pass_rates[1],
            "omega=11 at k=100 ({}) should pass at least as often as omega=5 ({})",
            high_omega.pass_rates[1],
            low_omega.pass_rates[1]
        );
    }
}
