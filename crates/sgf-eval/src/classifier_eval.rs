//! Classifier comparisons (Tables 3 and 4).
//!
//! Table 3 trains a classification tree, a random forest, and AdaBoost.M1 on
//! real, marginal, and synthetic training sets and reports the test accuracy
//! plus the agreement rate with the classifier trained on real data.
//! Table 4 compares non-private LR/SVM trained on (privacy-preserving)
//! synthetics against Chaudhuri-style ε-DP LR/SVM trained on real data.

use rand::Rng;
use sgf_data::Dataset;
use sgf_ml::{
    accuracy, agreement_rate, encode_dataset, fit_private, AdaBoost, AdaBoostConfig, DecisionTree,
    DpErmConfig, DpErmMechanism, Encoding, ForestConfig, LinearConfig, LinearModel, Loss,
    MlDataset, RandomForest, TreeConfig,
};

/// Accuracy and agreement of the three Table-3 classifiers for one training set.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Training-set label ("reals", "marginals", "omega = 10", ...).
    pub label: String,
    /// Accuracy of (tree, random forest, AdaBoost) on the held-out test set.
    pub accuracy: [f64; 3],
    /// Agreement rate with the corresponding classifier trained on real data.
    pub agreement: [f64; 3],
}

/// The three classifiers of Table 3 trained on one dataset.
pub struct Table3Classifiers {
    tree: DecisionTree,
    forest: RandomForest,
    adaboost: AdaBoost,
}

/// Hyper-parameters of the Table-3 classifiers (kept small enough for a laptop run).
#[derive(Debug, Clone, Copy)]
pub struct Table3Config {
    /// Decision-tree configuration.
    pub tree: TreeConfig,
    /// Random-forest configuration.
    pub forest: ForestConfig,
    /// AdaBoost configuration.
    pub adaboost: AdaBoostConfig,
}

impl Default for Table3Config {
    fn default() -> Self {
        Table3Config {
            tree: TreeConfig::default(),
            forest: ForestConfig {
                trees: 20,
                ..ForestConfig::default()
            },
            adaboost: AdaBoostConfig {
                rounds: 30,
                ..AdaBoostConfig::default()
            },
        }
    }
}

/// Train the three classifiers of Table 3 on one training set.
pub fn train_table3_classifiers<R: Rng + ?Sized>(
    train: &MlDataset,
    config: &Table3Config,
    rng: &mut R,
) -> Table3Classifiers {
    Table3Classifiers {
        tree: DecisionTree::fit(train, &config.tree, rng),
        forest: RandomForest::fit(train, &config.forest, rng),
        adaboost: AdaBoost::fit(train, &config.adaboost, rng),
    }
}

/// Build the full Table 3: the first candidate should be the real training set
/// (its row defines the reference classifiers for the agreement column).
pub fn table3<R: Rng + ?Sized>(
    candidates: &[(String, &Dataset)],
    test: &Dataset,
    target_attr: usize,
    config: &Table3Config,
    rng: &mut R,
) -> Vec<Table3Row> {
    assert!(!candidates.is_empty(), "at least one training set required");
    let test_ml = encode_dataset(test, target_attr, Encoding::Ordinal);
    let reference = train_table3_classifiers(
        &encode_dataset(candidates[0].1, target_attr, Encoding::Ordinal),
        config,
        rng,
    );

    candidates
        .iter()
        .map(|(label, dataset)| {
            let train_ml = encode_dataset(dataset, target_attr, Encoding::Ordinal);
            let trained = train_table3_classifiers(&train_ml, config, rng);
            Table3Row {
                label: label.clone(),
                accuracy: [
                    accuracy(&trained.tree, &test_ml),
                    accuracy(&trained.forest, &test_ml),
                    accuracy(&trained.adaboost, &test_ml),
                ],
                agreement: [
                    agreement_rate(&trained.tree, &reference.tree, &test_ml),
                    agreement_rate(&trained.forest, &reference.forest, &test_ml),
                    agreement_rate(&trained.adaboost, &reference.adaboost, &test_ml),
                ],
            }
        })
        .collect()
}

/// One row of Table 4: LR and SVM accuracy for a given training regime.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Regime label ("non private", "output perturbation", "omega = 10", ...).
    pub label: String,
    /// Logistic-regression accuracy.
    pub logistic_regression: f64,
    /// SVM (Huber hinge) accuracy.
    pub svm: f64,
}

/// Configuration of the Table-4 comparison.
#[derive(Debug, Clone)]
pub struct Table4Config {
    /// Privacy budget ε for the DP-ERM classifiers (the paper uses 1).
    pub epsilon: f64,
    /// Candidate regularization strengths; the best value (by non-private
    /// accuracy) is selected, mirroring the paper's optimistic λ grid search.
    pub lambdas: Vec<f64>,
    /// Gradient-descent iterations.
    pub iterations: usize,
}

impl Default for Table4Config {
    fn default() -> Self {
        Table4Config {
            epsilon: 1.0,
            lambdas: vec![1e-3, 1e-4, 1e-5, 1e-6],
            iterations: 200,
        }
    }
}

fn linear_config(loss: Loss, lambda: f64, iterations: usize) -> LinearConfig {
    LinearConfig {
        loss,
        lambda,
        iterations,
        learning_rate: 1.0,
    }
}

/// Pick the λ maximizing non-private accuracy on the test set (the paper
/// "optimistically" picks whichever value maximizes the accuracy of the
/// non-private classification model).
pub fn select_lambda(
    train: &MlDataset,
    test: &MlDataset,
    loss: Loss,
    config: &Table4Config,
) -> f64 {
    let mut best = (config.lambdas[0], f64::NEG_INFINITY);
    for &lambda in &config.lambdas {
        let model = LinearModel::fit(train, &linear_config(loss, lambda, config.iterations));
        let acc = accuracy(&model, test);
        if acc > best.1 {
            best = (lambda, acc);
        }
    }
    best.0
}

/// Build Table 4.  `real_train` is the real training data (used for the
/// non-private and DP-ERM rows); `synthetic_candidates` are the marginal /
/// synthetic training sets (used with non-private training).
pub fn table4<R: Rng + ?Sized>(
    real_train: &Dataset,
    synthetic_candidates: &[(String, &Dataset)],
    test: &Dataset,
    target_attr: usize,
    config: &Table4Config,
    rng: &mut R,
) -> Vec<Table4Row> {
    let encoding = Encoding::OneHotNormalized { unit_norm: true };
    let real_ml = encode_dataset(real_train, target_attr, encoding);
    let test_ml = encode_dataset(test, target_attr, encoding);

    let lambda_lr = select_lambda(&real_ml, &test_ml, Loss::Logistic, config);
    let lambda_svm = select_lambda(&real_ml, &test_ml, Loss::HuberHinge, config);

    let lr_cfg = linear_config(Loss::Logistic, lambda_lr, config.iterations);
    let svm_cfg = linear_config(Loss::HuberHinge, lambda_svm, config.iterations);

    let mut rows = Vec::new();

    // Non-private classifiers trained on real data.
    rows.push(Table4Row {
        label: "non-private (reals)".to_string(),
        logistic_regression: accuracy(&LinearModel::fit(&real_ml, &lr_cfg), &test_ml),
        svm: accuracy(&LinearModel::fit(&real_ml, &svm_cfg), &test_ml),
    });

    // DP-ERM classifiers trained on real data.
    for (label, mechanism) in [
        (
            "output perturbation (reals)",
            DpErmMechanism::OutputPerturbation,
        ),
        (
            "objective perturbation (reals)",
            DpErmMechanism::ObjectivePerturbation,
        ),
    ] {
        let lr = fit_private(
            &real_ml,
            &DpErmConfig {
                linear: lr_cfg,
                epsilon: config.epsilon,
                mechanism,
            },
            rng,
        );
        let svm = fit_private(
            &real_ml,
            &DpErmConfig {
                linear: svm_cfg,
                epsilon: config.epsilon,
                mechanism,
            },
            rng,
        );
        rows.push(Table4Row {
            label: label.to_string(),
            logistic_regression: accuracy(&lr, &test_ml),
            svm: accuracy(&svm, &test_ml),
        });
    }

    // Non-private classifiers trained on marginal / synthetic data.
    for (label, dataset) in synthetic_candidates {
        let train_ml = encode_dataset(dataset, target_attr, encoding);
        rows.push(Table4Row {
            label: label.clone(),
            logistic_regression: accuracy(&LinearModel::fit(&train_ml, &lr_cfg), &test_ml),
            svm: accuracy(&LinearModel::fit(&train_ml, &svm_cfg), &test_ml),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::acs::{attr, generate_acs};
    use sgf_model::{MarginalConfig, MarginalModel};

    #[test]
    fn table3_reals_beat_marginals() {
        let reals = generate_acs(2500, 41);
        let test = generate_acs(1200, 42);
        let mut rng = StdRng::seed_from_u64(1);
        let marginal = MarginalModel::learn(&reals, MarginalConfig::default()).unwrap();
        let marginal_data = marginal.sample_dataset(2500, &mut rng);

        let config = Table3Config {
            forest: ForestConfig {
                trees: 8,
                ..ForestConfig::default()
            },
            adaboost: AdaBoostConfig {
                rounds: 10,
                ..AdaBoostConfig::default()
            },
            ..Table3Config::default()
        };
        let rows = table3(
            &[
                ("reals".to_string(), &reals),
                ("marginals".to_string(), &marginal_data),
            ],
            &test,
            attr::INCOME,
            &config,
            &mut rng,
        );
        assert_eq!(rows.len(), 2);
        // Real-trained random forest should beat marginal-trained one, and the
        // reals row agrees with itself more than the marginals row does.
        assert!(rows[0].accuracy[1] > rows[1].accuracy[1]);
        assert!(rows[0].agreement[1] >= rows[1].agreement[1]);
        for row in &rows {
            for v in row.accuracy.iter().chain(row.agreement.iter()) {
                assert!((0.0..=1.0).contains(v));
            }
        }
    }

    #[test]
    fn table4_produces_all_rows_with_sane_accuracies() {
        let reals = generate_acs(1500, 43);
        let test = generate_acs(800, 44);
        let mut rng = StdRng::seed_from_u64(2);
        let marginal = MarginalModel::learn(&reals, MarginalConfig::default()).unwrap();
        let marginal_data = marginal.sample_dataset(1500, &mut rng);

        let config = Table4Config {
            lambdas: vec![1e-3, 1e-4],
            iterations: 120,
            ..Table4Config::default()
        };
        let rows = table4(
            &reals,
            &[("marginals".to_string(), &marginal_data)],
            &test,
            attr::INCOME,
            &config,
            &mut rng,
        );
        assert_eq!(rows.len(), 4);
        assert!(rows
            .iter()
            .all(|r| (0.0..=1.0).contains(&r.logistic_regression)));
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.svm)));
        // Non-private on reals should beat chance decisively.
        assert!(rows[0].logistic_regression > 0.6);
    }

    #[test]
    fn lambda_selection_returns_candidate() {
        let reals = generate_acs(600, 45);
        let ml = encode_dataset(
            &reals,
            attr::INCOME,
            Encoding::OneHotNormalized { unit_norm: true },
        );
        let config = Table4Config {
            lambdas: vec![1e-2, 1e-4],
            iterations: 60,
            ..Table4Config::default()
        };
        let lambda = select_lambda(&ml, &ml, Loss::Logistic, &config);
        assert!(config.lambdas.contains(&lambda));
    }
}
