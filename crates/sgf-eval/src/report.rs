//! Plain-text report rendering for the experiment binaries.
//!
//! Every experiment binary prints the same rows/series the paper reports; the
//! helpers here keep the formatting consistent (fixed-width columns, one row
//! per configuration).

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: ToString>(header: &[S]) -> Self {
        TextTable {
            header: header.iter().map(S::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    pub fn add_row<S: ToString>(&mut self, row: &[S]) {
        let row: Vec<String> = row.iter().map(S::to_string).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal (the paper's style).
pub fn percent(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format a float with three decimals.
pub fn fixed3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "accuracy"]);
        t.add_row(&["reals".to_string(), percent(0.804)]);
        t.add_row(&["marginals".to_string(), percent(0.638)]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("80.4%"));
        assert!(s.contains("63.8%"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.add_row(&["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.5), "50.0%");
        assert_eq!(fixed3(0.12345), "0.123");
    }
}
