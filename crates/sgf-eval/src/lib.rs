//! # sgf-eval
//!
//! Evaluation harness reproducing every table and figure of the evaluation
//! section of *Plausible Deniability for Privacy-Preserving Data Synthesis*
//! (VLDB 2017):
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Figure 1 (relative model-accuracy improvement) | [`mod@model_accuracy`] |
//! | Figure 2 (model accuracy per attribute) | [`mod@model_accuracy`] |
//! | Figure 3 (statistical distance, single attributes) | [`statistical_distance`] |
//! | Figure 4 (statistical distance, attribute pairs) | [`statistical_distance`] |
//! | Figure 5 (generation time) | [`performance`] |
//! | Figure 6 (privacy-test pass rate) | [`pass_rate`] |
//! | Table 3 (Tree/RF/AdaBoost accuracy + agreement) | [`classifier_eval`] |
//! | Table 4 (DP-ERM LR/SVM comparison) | [`classifier_eval`] |
//! | Table 5 (distinguishing game) | [`distinguish`] |
//!
//! The experiment binaries in the `bench` crate drive these modules and print
//! the same rows/series the paper reports.

pub mod classifier_eval;
pub mod distinguish;
pub mod model_accuracy;
pub mod pass_rate;
pub mod performance;
pub mod report;
pub mod statistical_distance;

pub use classifier_eval::{table3, table4, Table3Config, Table3Row, Table4Config, Table4Row};
pub use distinguish::{
    distinguishing_game, distinguishing_table, DistinguishConfig, DistinguishResult,
};
pub use model_accuracy::{model_accuracy, ModelAccuracy};
pub use pass_rate::{pass_rate_sweep, PassRateConfig, PassRateSeries};
pub use performance::{performance_curve, PerformancePoint};
pub use report::{fixed3, percent, TextTable};
pub use statistical_distance::{compare_datasets, DistanceReport};
