//! Synthesis-performance measurement (Figure 5).
//!
//! The paper reports the wall-clock time to learn the model and to generate
//! increasing numbers of synthetic records (ω = 9, k = 50, γ = 4).  This
//! module measures the same two phases on the local machine, paying the
//! learning phase exactly once (the staged session API) and serving one
//! `generate` request per requested output size.

use sgf_core::{GenerateRequest, PipelineConfig, SynthesisEngine};
use sgf_data::{Bucketizer, Dataset};
use std::time::Duration;

/// One point of the Figure-5 curve.
#[derive(Debug, Clone, Copy)]
pub struct PerformancePoint {
    /// Number of synthetics requested.
    pub requested: usize,
    /// Number of synthetics actually released.
    pub released: usize,
    /// Number of candidates proposed.
    pub candidates: usize,
    /// Time spent learning the model.
    pub model_learning: Duration,
    /// Time spent generating and testing candidates.
    pub synthesis: Duration,
}

/// Measure the generation time for each requested output size.  The model is
/// trained once; every output size is one request against the same session,
/// so `model_learning` is identical across the returned points.
pub fn performance_curve(
    dataset: &Dataset,
    bucketizer: &Bucketizer,
    base_config: &PipelineConfig,
    output_sizes: &[usize],
) -> sgf_core::Result<Vec<PerformancePoint>> {
    let session = SynthesisEngine::from_config(*base_config).train(dataset, bucketizer)?;
    let mut points = Vec::with_capacity(output_sizes.len());
    for &size in output_sizes {
        let report = session.generate(
            &GenerateRequest::new(size)
                .with_omega(base_config.omega)
                .with_seed(base_config.seed),
        )?;
        points.push(PerformancePoint {
            requested: size,
            released: report.stats.released,
            candidates: report.stats.candidates,
            model_learning: session.training_time(),
            synthesis: report.synthesis,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgf_core::PrivacyTestConfig;
    use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
    use sgf_model::OmegaSpec;

    #[test]
    fn synthesis_time_grows_with_output_size() {
        let data = generate_acs(3000, 71);
        let bkt = acs_bucketizer(&acs_schema());
        let mut config = PipelineConfig::paper_defaults(1);
        config.privacy_test =
            PrivacyTestConfig::deterministic(20, 4.0).with_limits(Some(40), Some(1500));
        config.omega = OmegaSpec::Fixed(9);
        config.seed = 3;

        let points = performance_curve(&data, &bkt, &config, &[10, 80]).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[0].released <= 10 && points[1].released <= 80);
        assert!(points[1].candidates >= points[0].candidates);
        // More synthetics cannot take *less* proposals; wall-clock is noisy on
        // shared CI machines, so assert on candidate counts rather than time.
        assert!(points.iter().all(|p| p.model_learning > Duration::ZERO));
    }
}
