//! The distinguishing game (Table 5).
//!
//! An adversary is trained to tell real records from candidate (marginal or
//! synthetic) records: the training set mixes an equal number of both, and the
//! accuracy is measured on a held-out 50/50 mix.  High accuracy means the
//! candidate records are easy to spot; 50% means they are indistinguishable.

use rand::Rng;
use sgf_data::Dataset;
use sgf_ml::{accuracy, DecisionTree, ForestConfig, MlDataset, RandomForest, TreeConfig};

/// Accuracy of the random-forest and tree adversaries for one candidate dataset.
#[derive(Debug, Clone)]
pub struct DistinguishResult {
    /// Candidate label.
    pub label: String,
    /// Random-forest adversary accuracy.
    pub random_forest: f64,
    /// Classification-tree adversary accuracy.
    pub tree: f64,
}

/// Configuration of the distinguishing game.
#[derive(Debug, Clone, Copy)]
pub struct DistinguishConfig {
    /// Number of real and candidate records used for training (each).
    pub train_per_class: usize,
    /// Number of real and candidate records used for evaluation (each).
    pub test_per_class: usize,
    /// Random-forest adversary configuration.
    pub forest: ForestConfig,
    /// Tree adversary configuration.
    pub tree: TreeConfig,
}

impl Default for DistinguishConfig {
    fn default() -> Self {
        DistinguishConfig {
            train_per_class: 2_000,
            test_per_class: 1_000,
            forest: ForestConfig {
                trees: 20,
                ..ForestConfig::default()
            },
            tree: TreeConfig::default(),
        }
    }
}

/// Turn records into labelled adversary examples: label 1 = real, 0 = candidate.
fn labelled(
    real: &Dataset,
    candidate: &Dataset,
    count: usize,
    offset_real: usize,
    offset_cand: usize,
) -> MlDataset {
    let m = real.schema().len();
    let mut ml = MlDataset::default();
    for i in 0..count {
        let record = real.record((offset_real + i) % real.len());
        ml.features
            .push((0..m).map(|a| record.get(a) as f64).collect());
        ml.labels.push(1);
        let record = candidate.record((offset_cand + i) % candidate.len());
        ml.features
            .push((0..m).map(|a| record.get(a) as f64).collect());
        ml.labels.push(0);
    }
    ml
}

/// Play the distinguishing game for one candidate dataset.
pub fn distinguishing_game<R: Rng + ?Sized>(
    label: &str,
    real: &Dataset,
    candidate: &Dataset,
    config: &DistinguishConfig,
    rng: &mut R,
) -> DistinguishResult {
    assert!(
        !real.is_empty() && !candidate.is_empty(),
        "both datasets must be non-empty"
    );
    let train = labelled(real, candidate, config.train_per_class, 0, 0);
    let test = labelled(
        real,
        candidate,
        config.test_per_class,
        config.train_per_class,
        config.train_per_class,
    );
    let forest = RandomForest::fit(&train, &config.forest, rng);
    let tree = DecisionTree::fit(&train, &config.tree, rng);
    DistinguishResult {
        label: label.to_string(),
        random_forest: accuracy(&forest, &test),
        tree: accuracy(&tree, &test),
    }
}

/// Play the game for several candidate datasets against the same real data.
pub fn distinguishing_table<R: Rng + ?Sized>(
    real: &Dataset,
    candidates: &[(String, &Dataset)],
    config: &DistinguishConfig,
    rng: &mut R,
) -> Vec<DistinguishResult> {
    candidates
        .iter()
        .map(|(label, candidate)| distinguishing_game(label, real, candidate, config, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::acs::generate_acs;
    use sgf_model::{MarginalConfig, MarginalModel};

    #[test]
    fn reals_are_indistinguishable_from_reals_but_marginals_are_not() {
        let real = generate_acs(6000, 51);
        let other_real = generate_acs(6000, 52);
        let mut rng = StdRng::seed_from_u64(1);
        let marginal = MarginalModel::learn(&real, MarginalConfig::default()).unwrap();
        let marginal_data = marginal.sample_dataset(6000, &mut rng);

        let config = DistinguishConfig {
            train_per_class: 1500,
            test_per_class: 800,
            forest: ForestConfig {
                trees: 10,
                ..ForestConfig::default()
            },
            ..DistinguishConfig::default()
        };
        let results = distinguishing_table(
            &real,
            &[
                ("reals".to_string(), &other_real),
                ("marginals".to_string(), &marginal_data),
            ],
            &config,
            &mut rng,
        );
        assert_eq!(results.len(), 2);
        // Real-vs-real should hover around chance; real-vs-marginal should be
        // clearly distinguishable (the paper reports ~80% vs 50%).
        assert!(
            (results[0].random_forest - 0.5).abs() < 0.08,
            "real-vs-real accuracy {}",
            results[0].random_forest
        );
        assert!(
            results[1].random_forest > results[0].random_forest + 0.1,
            "marginals should be easier to spot: {} vs {}",
            results[1].random_forest,
            results[0].random_forest
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_inputs_panic() {
        let real = generate_acs(10, 53);
        let empty = real.truncated(0);
        let mut rng = StdRng::seed_from_u64(2);
        distinguishing_game("x", &real, &empty, &DistinguishConfig::default(), &mut rng);
    }
}
