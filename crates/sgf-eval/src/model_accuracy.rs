//! Model-accuracy probes (Figures 1 and 2).
//!
//! For every attribute, repeatedly pick a record uniformly at random and ask a
//! predictor for the most likely value of that attribute given the rest; the
//! model accuracy is the fraction of correct guesses.  Figure 2 compares the
//! generative model, a random forest, the marginals, and random guessing;
//! Figure 1 reports the *relative improvement* over the marginals for the
//! un-noised and ε-DP generative models.

use rand::Rng;
use sgf_data::Dataset;
use sgf_ml::{encode_dataset, Classifier, Encoding, ForestConfig, RandomForest};
use sgf_model::{BayesNetModel, MarginalModel};
use sgf_stats::Histogram;

/// Per-attribute accuracies of the four predictors of Figure 2.
#[derive(Debug, Clone, Default)]
pub struct ModelAccuracy {
    /// Accuracy of the Bayesian-network generative model.
    pub generative: Vec<f64>,
    /// Accuracy of a random forest trained to predict each attribute.
    pub random_forest: Vec<f64>,
    /// Accuracy of predicting the marginal mode.
    pub marginals: Vec<f64>,
    /// Accuracy of uniformly random guessing (1 / cardinality).
    pub random: Vec<f64>,
}

impl ModelAccuracy {
    /// Relative improvement of the generative model over the marginals,
    /// per attribute: `(acc_gen - acc_marg) / acc_marg` (Figure 1's y-axis).
    pub fn relative_improvement(&self) -> Vec<f64> {
        self.generative
            .iter()
            .zip(self.marginals.iter())
            .map(|(&g, &m)| if m > 0.0 { (g - m) / m } else { 0.0 })
            .collect()
    }
}

/// Accuracy of the generative model's most-likely-value prediction, per attribute.
pub fn generative_model_accuracy<R: Rng + ?Sized>(
    model: &BayesNetModel,
    evaluation: &Dataset,
    probes_per_attribute: usize,
    rng: &mut R,
) -> Vec<f64> {
    let m = evaluation.schema().len();
    (0..m)
        .map(|attr| {
            let mut correct = 0usize;
            for _ in 0..probes_per_attribute {
                let record = evaluation
                    .sample_record(rng)
                    .expect("evaluation dataset must not be empty");
                if model.predict_attribute(record, attr) == record.get(attr) {
                    correct += 1;
                }
            }
            correct as f64 / probes_per_attribute as f64
        })
        .collect()
}

/// Index of the largest non-NaN value (lowest index wins ties; 0 when the
/// slice is empty or all-NaN).  `total_cmp` keeps the comparator total, and
/// the NaN filter keeps a corrupted marginal cell from *winning* the argmax
/// (total_cmp orders positive NaN above +inf).
fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Accuracy of predicting each attribute by its marginal mode.
pub fn marginal_accuracy(marginal: &MarginalModel, evaluation: &Dataset) -> Vec<f64> {
    let m = evaluation.schema().len();
    (0..m)
        .map(|attr| {
            let mode = argmax(marginal.marginal(attr)) as u16;
            let hist = Histogram::from_column(evaluation, attr);
            if hist.total() == 0 {
                0.0
            } else {
                hist.count(mode as usize) as f64 / hist.total() as f64
            }
        })
        .collect()
}

/// Accuracy of uniformly random guessing per attribute (1 / cardinality).
pub fn random_guess_accuracy(evaluation: &Dataset) -> Vec<f64> {
    evaluation
        .schema()
        .cardinalities()
        .into_iter()
        .map(|c| 1.0 / c as f64)
        .collect()
}

/// Accuracy of a random forest trained (on `train`) to predict each attribute
/// from the others.  Attributes with more than two values are reduced to the
/// "is the majority value" binary task, which keeps the forest binary while
/// still measuring how informative the other attributes are.
pub fn random_forest_accuracy<R: Rng + ?Sized>(
    train: &Dataset,
    evaluation: &Dataset,
    config: &ForestConfig,
    rng: &mut R,
) -> Vec<f64> {
    let m = train.schema().len();
    (0..m)
        .map(|attr| {
            let hist = Histogram::from_column(train, attr);
            let majority = hist.mode() as u16;
            let to_binary = |dataset: &Dataset| {
                let mut ml = sgf_ml::MlDataset::default();
                for record in dataset.records() {
                    let features: Vec<f64> = (0..m)
                        .filter(|&a| a != attr)
                        .map(|a| record.get(a) as f64)
                        .collect();
                    ml.features.push(features);
                    ml.labels.push(u8::from(record.get(attr) == majority));
                }
                ml
            };
            let train_ml = to_binary(train);
            let eval_ml = to_binary(evaluation);
            let forest = RandomForest::fit(&train_ml, config, rng);
            // Translate back: "majority" prediction counts as correct when the
            // true value is the majority value and vice versa.
            let correct = eval_ml
                .features
                .iter()
                .zip(eval_ml.labels.iter())
                .filter(|(f, &l)| forest.predict(f) == l)
                .count();
            correct as f64 / eval_ml.len().max(1) as f64
        })
        .collect()
}

/// Compute all four accuracy series of Figure 2.
#[allow(clippy::too_many_arguments)]
pub fn model_accuracy<R: Rng + ?Sized>(
    model: &BayesNetModel,
    marginal: &MarginalModel,
    train: &Dataset,
    evaluation: &Dataset,
    probes_per_attribute: usize,
    forest_config: &ForestConfig,
    rng: &mut R,
) -> ModelAccuracy {
    ModelAccuracy {
        generative: generative_model_accuracy(model, evaluation, probes_per_attribute, rng),
        random_forest: random_forest_accuracy(train, evaluation, forest_config, rng),
        marginals: marginal_accuracy(marginal, evaluation),
        random: random_guess_accuracy(evaluation),
    }
}

/// Convenience wrapper: evaluate the income-classification usefulness of the
/// generative model (not used by a figure directly, but handy in examples).
pub fn income_prediction_accuracy<R: Rng + ?Sized>(
    train: &Dataset,
    evaluation: &Dataset,
    target_attr: usize,
    rng: &mut R,
) -> f64 {
    let train_ml = encode_dataset(train, target_attr, Encoding::Ordinal);
    let eval_ml = encode_dataset(evaluation, target_attr, Encoding::Ordinal);
    let forest = RandomForest::fit(&train_ml, &ForestConfig::default(), rng);
    sgf_ml::accuracy(&forest, &eval_ml)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
    use sgf_data::{split_dataset, SplitSpec};
    use sgf_model::{
        learn_dependency_structure, CptStore, MarginalConfig, ParameterConfig, StructureConfig,
    };
    use std::sync::Arc;

    fn setup() -> (BayesNetModel, MarginalModel, Dataset, Dataset) {
        let data = generate_acs(4000, 21);
        let bkt = acs_bucketizer(&acs_schema());
        let mut rng = StdRng::seed_from_u64(1);
        let split = split_dataset(&data, &SplitSpec::paper_defaults(), &mut rng).unwrap();
        let structure =
            learn_dependency_structure(&split.structure, &bkt, &StructureConfig::exact(), &mut rng)
                .unwrap();
        let cpts = Arc::new(
            CptStore::learn(
                &split.parameters,
                &bkt,
                &structure.graph,
                ParameterConfig::default(),
            )
            .unwrap(),
        );
        let marginal = MarginalModel::learn(&split.parameters, MarginalConfig::default()).unwrap();
        (
            BayesNetModel::new(cpts),
            marginal,
            split.parameters,
            split.test,
        )
    }

    #[test]
    fn generative_model_beats_random_guessing_on_average() {
        let (model, marginal, train, test) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let forest_cfg = ForestConfig {
            trees: 5,
            ..ForestConfig::default()
        };
        let acc = model_accuracy(&model, &marginal, &train, &test, 150, &forest_cfg, &mut rng);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert_eq!(acc.generative.len(), 11);
        assert!(
            mean(&acc.generative) > mean(&acc.random),
            "generative should beat random"
        );
        assert!(mean(&acc.marginals) >= mean(&acc.random));
        // All series are probabilities.
        for series in [
            &acc.generative,
            &acc.random_forest,
            &acc.marginals,
            &acc.random,
        ] {
            assert!(series.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        let improvement = acc.relative_improvement();
        assert_eq!(improvement.len(), 11);
    }

    #[test]
    fn argmax_survives_nan_cells_and_breaks_ties_low() {
        // Regression: the old `max_by(partial_cmp(..).expect(..))` panicked
        // on a NaN marginal cell; a NaN must neither panic nor win.
        assert_eq!(argmax(&[0.1, f64::NAN, 0.7, 0.2]), 2);
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), 0);
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[0.4, 0.4, 0.2]), 0, "ties go to the lowest index");
        assert_eq!(argmax(&[f64::NEG_INFINITY, -0.0, 0.0]), 2);
    }

    #[test]
    fn random_guess_accuracy_is_inverse_cardinality() {
        let data = generate_acs(50, 3);
        let acc = random_guess_accuracy(&data);
        assert!((acc[sgf_data::acs::attr::SEX] - 0.5).abs() < 1e-12);
        assert!((acc[sgf_data::acs::attr::AGE] - 1.0 / 80.0).abs() < 1e-12);
    }
}
