//! Protocol-level integration tests for `sgf-serve`: wire fidelity of
//! streamed and batched releases against the in-process session API, the
//! `status`/`ledger` verbs, machine-readable rejections, and graceful drain.

use sgf::core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine, SynthesisSession};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf::serve::{reject, serve, Client, ClientError, GenerateCall, ServeConfig, SessionEntry};

fn train_session(seed: u64) -> SynthesisSession {
    let population = generate_acs(3_500, seed);
    let bucketizer = acs_bucketizer(&acs_schema());
    SynthesisEngine::builder()
        .privacy_test(
            PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2_000)),
        )
        .max_candidate_factor(30)
        .seed(seed)
        .train(&population, &bucketizer)
        .unwrap()
}

/// Streaming a release across the serve worker boundary (the session's
/// `ReleaseIter` feeding record lines onto the wire) yields byte-identical
/// records to an in-process single-worker `generate` with the same seed —
/// and so does the batched protocol path.
#[test]
fn tcp_release_is_byte_identical_to_in_process_generate() {
    let session = train_session(41);
    let local = session.clone();
    let handle = serve(ServeConfig::default(), vec![SessionEntry::new(session)]).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let request = GenerateRequest::new(12).with_seed(5).with_workers(1);
    let reference = local.generate(&request).unwrap();

    // The streaming path proposes lazily through a ReleaseIter on a serve
    // worker; the batch path fans out through generate.  Same seed, same
    // records, on both sides of the wire.
    let streamed = client
        .generate(
            &GenerateCall::new(12)
                .with_stream(true)
                .with_request(request),
        )
        .unwrap();
    assert!(streamed.streaming);
    assert_eq!(reference.synthetics.records(), &streamed.records[..]);
    assert_eq!(
        streamed.stats.get("released").and_then(|v| v.as_u64()),
        Some(streamed.records.len() as u64)
    );

    let batched = client
        .generate(&GenerateCall::new(12).with_request(request))
        .unwrap();
    assert!(!batched.streaming);
    assert_eq!(reference.synthetics.records(), &batched.records[..]);

    // All three runs charged the one shared ledger.
    let ledger = local.ledger();
    assert_eq!(ledger.requests, 3);
    assert_eq!(ledger.releases, 3 * reference.stats.released);
    assert_eq!(ledger.reserved, 0);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn status_and_ledger_verbs_report_server_state() {
    let session = train_session(42);
    let local = session.clone();
    let handle = serve(
        ServeConfig {
            queue_capacity: 7,
            workers: 2,
            ..ServeConfig::default()
        },
        vec![SessionEntry::new(session).named("census")],
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let status = client.status().unwrap();
    assert_eq!(
        status.get("draining").and_then(|v| v.as_bool()),
        Some(false)
    );
    assert_eq!(
        status.get("queue_capacity").and_then(|v| v.as_u64()),
        Some(7)
    );
    assert_eq!(status.get("workers").and_then(|v| v.as_u64()), Some(2));
    let sessions: Vec<&str> = status
        .get("sessions")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .filter_map(|v| v.as_str())
        .collect();
    assert_eq!(sessions, vec!["census"]);

    let release = client
        .generate(
            &GenerateCall::new(9)
                .with_session("census")
                .with_request(GenerateRequest::new(9).with_seed(2)),
        )
        .unwrap();

    // The ledger verb mirrors the in-process ledger of the shared session.
    let response = client.ledger("census").unwrap();
    let wire = response.get("ledger").unwrap();
    let ledger = local.ledger();
    assert_eq!(wire.get("requests").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        wire.get("releases").and_then(|v| v.as_usize()),
        Some(ledger.releases)
    );
    assert_eq!(
        wire.get("total_epsilon").and_then(|v| v.as_f64()),
        Some(ledger.total().epsilon)
    );
    // Uncapped session: the cap fields are null.
    assert_eq!(
        response.get("cap_epsilon"),
        Some(&sgf::serve::json::Value::Null)
    );
    assert_eq!(release.records.len(), ledger.releases);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A capped streaming request over TCP settles exactly: converted records
/// count as releases, the unstreamed remainder is returned, and the cap
/// arithmetic afterwards reflects only what actually streamed.
#[test]
fn capped_streaming_settles_the_reservation_exactly() {
    use sgf::serve::cap_admitting;

    let session = train_session(45);
    let local = session.clone();
    let target = 6usize;
    let cap = cap_admitting(&session, 2 * target).unwrap();
    let handle = serve(
        ServeConfig::default(),
        vec![SessionEntry::new(session).capped(cap)],
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let streamed = client
        .generate(
            &GenerateCall::new(target)
                .with_stream(true)
                .with_request(GenerateRequest::new(target).with_seed(1)),
        )
        .unwrap();
    assert!(streamed.streaming);
    assert!(!streamed.records.is_empty());

    let ledger = local.ledger();
    assert_eq!(ledger.releases, streamed.records.len());
    assert_eq!(ledger.reserved, 0, "the remainder must be handed back");
    assert!(ledger.reserved_total().epsilon <= cap.epsilon);

    // The freed remainder is admissible again: a second full-target request
    // fits under the 2×target cap no matter how short the stream fell.
    let second = client
        .generate(
            &GenerateCall::new(target).with_request(GenerateRequest::new(target).with_seed(2)),
        )
        .unwrap();
    assert!(!second.records.is_empty());
    assert!(local.ledger().total().epsilon <= cap.epsilon);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The server prunes per-connection state when clients disconnect (no fd
/// leak across connection churn), observable through the status verb.
#[test]
fn disconnected_clients_are_pruned_from_server_state() {
    use std::time::{Duration, Instant};

    let session = train_session(46);
    let handle = serve(ServeConfig::default(), vec![SessionEntry::new(session)]).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Churn a batch of short-lived connections.
    for _ in 0..8 {
        let mut ephemeral = Client::connect(handle.addr()).unwrap();
        assert!(ephemeral.status().is_ok());
    }
    // Pruning happens as each reader observes EOF; wait for it to settle to
    // just the surviving client.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let connections = client
            .status()
            .unwrap()
            .get("connections")
            .and_then(|v| v.as_u64())
            .expect("status reports connections");
        if connections == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "stale connections not pruned");
        std::thread::sleep(Duration::from_millis(10));
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The observability surface over TCP: provenance blocks ride the batch
/// header and the stream trailer, the `metrics` verb exposes the session's
/// labeled cell, and the `trace` verb returns the complete generate span
/// tree — with unknown sessions rejected on both verbs.
#[test]
fn metrics_trace_and_provenance_expose_the_release_lifecycle() {
    let session = train_session(47);
    let handle = serve(
        ServeConfig::default(),
        vec![SessionEntry::new(session).named("obs")],
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Batch: the provenance block rides the header.
    let batched = client
        .generate(
            &GenerateCall::new(8)
                .with_session("obs")
                .with_request(GenerateRequest::new(8).with_seed(3).with_workers(1)),
        )
        .unwrap();
    let store = batched
        .provenance
        .get("store")
        .and_then(|v| v.as_str())
        .expect("provenance names its seed store");
    assert!(
        ["scan", "inverted", "partition"].contains(&store),
        "unexpected store kind {store}"
    );
    assert_eq!(
        batched
            .provenance
            .get("request_seed")
            .and_then(|v| v.as_u64()),
        Some(3)
    );
    assert!(
        batched
            .provenance
            .get("ledger")
            .and_then(|l| l.get("before"))
            .is_some(),
        "provenance carries the pre-request ledger snapshot"
    );
    assert!(
        batched
            .provenance
            .get("trace_spans")
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
            > 0,
        "a traced batch generate records its span count"
    );

    // Stream: the same block rides the trailer.
    let streamed = client
        .generate(
            &GenerateCall::new(8)
                .with_session("obs")
                .with_stream(true)
                .with_request(GenerateRequest::new(8).with_seed(4).with_workers(1)),
        )
        .unwrap();
    assert!(streamed.streaming);
    assert!(
        streamed.provenance.get("store").is_some(),
        "stream trailer carries provenance"
    );

    // metrics: the session's labeled cell counts both finished requests
    // (the stream's counters flush before its trailer is written, so the
    // cell is current by the time the client reads this).
    let response = client.metrics(Some("obs"), false).unwrap();
    let counters = response
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .expect("session metrics carry counters");
    assert_eq!(
        counters
            .get("core.mechanism.requests")
            .and_then(|v| v.as_u64()),
        Some(2)
    );
    assert_eq!(
        counters
            .get("core.mechanism.released")
            .and_then(|v| v.as_u64()),
        Some((batched.released + streamed.released) as u64)
    );
    // The deterministic default is counters-only; `noisy` opts into the
    // wall-clock-bearing sections.
    let summary_count = |response: &sgf::serve::json::Value| {
        response
            .get("metrics")
            .and_then(|m| m.get("summaries"))
            .and_then(|s| s.as_object())
            .map_or(0, |entries| entries.len())
    };
    assert_eq!(summary_count(&response), 0);
    let noisy = client.metrics(Some("obs"), true).unwrap();
    assert!(summary_count(&noisy) > 0, "noisy metrics carry summaries");

    // trace: the session's span trees include a complete generate lifecycle
    // — generate root, proposals child, per-candidate privacy tests.
    let response = client.trace(Some("obs"), false).unwrap();
    assert_eq!(
        response.get("enabled").and_then(|v| v.as_bool()),
        Some(true)
    );
    let events = response
        .get("trace")
        .and_then(|t| t.get("events"))
        .and_then(|e| e.as_array())
        .expect("trace returns an event array");
    let labels_of = |event: &sgf::serve::json::Value| {
        event
            .get("labels")
            .and_then(|v| v.as_str())
            .unwrap_or_default()
            .to_string()
    };
    let generate = events
        .iter()
        .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("core.generate"))
        .expect("a core.generate span for the session");
    assert!(labels_of(generate).contains("session=obs"));
    assert!(labels_of(generate).contains("store="));
    let root = generate.get("span").and_then(|v| v.as_u64()).unwrap();
    let proposals = events
        .iter()
        .find(|e| {
            e.get("name").and_then(|v| v.as_str()) == Some("core.proposals")
                && e.get("parent").and_then(|v| v.as_u64()) == Some(root)
        })
        .expect("a core.proposals child span");
    let proposals_span = proposals.get("span").and_then(|v| v.as_u64()).unwrap();
    let probes: Vec<_> = events
        .iter()
        .filter(|e| {
            e.get("name").and_then(|v| v.as_str()) == Some("core.privacy_test")
                && e.get("parent").and_then(|v| v.as_u64()) == Some(proposals_span)
        })
        .collect();
    assert!(!probes.is_empty(), "per-candidate privacy-test spans");
    for probe in probes {
        let labels = labels_of(probe);
        assert!(labels.contains("outcome=pass") || labels.contains("outcome=fail"));
    }
    // Deterministic by default: no wall clocks unless `noisy`.
    assert!(events.iter().all(|e| e.get("wall_nanos").is_none()));

    // Unknown sessions are rejected on both observability verbs.
    for result in [
        client.metrics(Some("nope"), false),
        client.trace(Some("nope"), false),
    ] {
        let err = result.unwrap_err();
        assert!(matches!(
            err,
            ClientError::Rejected(r) if r.code == reject::UNKNOWN_SESSION
        ));
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn rejections_carry_machine_readable_codes() {
    let session = train_session(43);
    let handle = serve(ServeConfig::default(), vec![SessionEntry::new(session)]).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown session.
    let err = client
        .generate(&GenerateCall::new(5).with_session("nope"))
        .unwrap_err();
    let ClientError::Rejected(rejection) = err else {
        panic!("expected a rejection");
    };
    assert_eq!(rejection.code, reject::UNKNOWN_SESSION);
    assert_eq!(
        rejection.detail.get("session").and_then(|v| v.as_str()),
        Some("nope")
    );
    let err = client.ledger("nope").unwrap_err();
    assert!(matches!(
        err,
        ClientError::Rejected(r) if r.code == reject::UNKNOWN_SESSION
    ));

    // Malformed and invalid requests: bad_request with a reason, and the
    // connection stays usable afterwards.
    for line in [
        r#"{"verb":"generate"}"#,
        r#"{"verb":"generate","target":0}"#,
        r#"{"verb":"warp"}"#,
        "not json at all",
    ] {
        let err = client.raw_roundtrip(line).unwrap_err();
        assert!(
            matches!(&err, ClientError::Rejected(r) if r.code == reject::BAD_REQUEST),
            "{line}: {err}"
        );
    }
    // A validation failure *inside* the session surfaces as generate_failed.
    let err = client
        .generate(
            &GenerateCall::new(5)
                .with_request(GenerateRequest::new(5).with_omega(sgf::model::OmegaSpec::Fixed(99))),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ClientError::Rejected(r) if r.code == reject::GENERATE_FAILED
    ));

    // Still healthy after every rejection.
    assert!(client.status().is_ok());
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn shutdown_drains_and_rejects_late_requests() {
    let session = train_session(44);
    let handle = serve(ServeConfig::default(), vec![SessionEntry::new(session)]).unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    let mut late = Client::connect(addr).unwrap();

    assert_eq!(client.generate(&GenerateCall::new(4)).unwrap().released, 4);
    client.shutdown().unwrap();

    // The draining server refuses new generate requests on live connections
    // with a machine-readable reason...
    let err = late.generate(&GenerateCall::new(4)).unwrap_err();
    match err {
        ClientError::Rejected(r) => assert_eq!(r.code, reject::SHUTTING_DOWN),
        // ...unless the drain already tore the connection down, which is an
        // equally clean refusal.
        ClientError::Io(_) => {}
        other => panic!("unexpected error {other}"),
    }

    // join returns only after every server thread exited; afterwards the
    // port no longer accepts connections.
    handle.join().unwrap();
    assert!(
        Client::connect(addr).is_err() || {
            // Accepting OS-level connect-then-EOF is fine too: the listener is
            // gone, so any connect must fail, but some platforms report it lazily
            // on first IO.
            let mut probe = Client::connect(addr).unwrap();
            probe.status().is_err()
        }
    );
}

/// The `update` verb end-to-end: a served delta advances the session to its
/// next epoch, the response reports the new epoch and seed count, and a
/// post-update generate releases byte-identical records to an in-process
/// session updated with the same delta (the serve layer adds nothing to the
/// equivalence invariant).  Bad deltas are rejected with machine-readable
/// codes and leave the session serving its current epoch.
#[test]
fn update_verb_advances_the_session_epoch_over_the_wire() {
    use sgf::serve::UpdateCall;

    let population = generate_acs(3_500, 47);
    let session = train_session(47);
    let local = session.clone();
    let handle = serve(
        ServeConfig::default(),
        vec![SessionEntry::new(session).named("incremental")],
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // The same delta, applied in-process and over the wire.
    let inserts: Vec<sgf::data::Record> = generate_acs(10, 91).records().to_vec();
    let deletes: Vec<sgf::data::Record> = population.records()[..5].to_vec();
    let mut delta = sgf::data::DatasetDelta::new(population.schema_arc());
    let mut call = UpdateCall::new().with_session("incremental");
    for record in &deletes {
        delta.delete(record.clone()).unwrap();
        call = call.delete(record.clone());
    }
    for record in &inserts {
        delta.insert(record.clone()).unwrap();
        call = call.insert(record.clone());
    }
    let updated_local = local.update(&delta).unwrap();

    let response = client.update(&call).unwrap();
    assert_eq!(response.get("epoch").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        response.get("seeds").and_then(|v| v.as_u64()),
        Some(updated_local.seeds().len() as u64)
    );
    assert_eq!(response.get("inserts").and_then(|v| v.as_u64()), Some(10));
    assert_eq!(response.get("deletes").and_then(|v| v.as_u64()), Some(5));

    // The served session now IS the next epoch: same bytes as the in-process
    // update, and the provenance carries the epoch stamp.
    let request = GenerateRequest::new(8).with_seed(3).with_workers(1);
    let reference = updated_local.generate(&request).unwrap();
    let served = client
        .generate(
            &GenerateCall::new(8)
                .with_session("incremental")
                .with_request(request),
        )
        .unwrap();
    assert_eq!(reference.synthetics.records(), &served.records[..]);
    assert_eq!(
        served.provenance.get("epoch").and_then(|v| v.as_u64()),
        Some(1)
    );

    // A delta deleting a record the dataset does not hold fails with
    // `update_failed` and the session keeps serving epoch 1.
    let ghost = population.records()[0].clone();
    let occurrences = updated_local.seeds().len().max(population.len());
    let mut bad = UpdateCall::new().with_session("incremental");
    for _ in 0..=occurrences {
        bad = bad.delete(ghost.clone());
    }
    match client.update(&bad) {
        Err(ClientError::Rejected(r)) => assert_eq!(r.code, reject::UPDATE_FAILED),
        other => panic!("expected update_failed, got {other:?}"),
    }
    // A wrong-arity record is a bad request, not a failed update.
    let mut stub = population.records()[0].values().to_vec();
    stub.push(0);
    match client.update(
        &UpdateCall::new()
            .with_session("incremental")
            .insert(sgf::data::Record::new(stub)),
    ) {
        Err(ClientError::Rejected(r)) => assert_eq!(r.code, reject::BAD_REQUEST),
        other => panic!("expected bad_request, got {other:?}"),
    }
    // Unknown sessions are rejected by the same admission gate as generate.
    match client.update(&UpdateCall::new().with_session("nonexistent")) {
        Err(ClientError::Rejected(r)) => assert_eq!(r.code, reject::UNKNOWN_SESSION),
        other => panic!("expected unknown_session, got {other:?}"),
    }
    let after = client
        .generate(
            &GenerateCall::new(8)
                .with_session("incremental")
                .with_request(GenerateRequest::new(8).with_seed(3).with_workers(1)),
        )
        .unwrap();
    assert_eq!(after.records, served.records);

    client.shutdown().unwrap();
    handle.join().unwrap();
}
