//! Property-based integration tests on the generative-model invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf::data::{Attribute, Bucketizer, Dataset, Record, Schema};
use sgf::model::{
    CptStore, DependencyGraph, GenerativeModel, MarginalConfig, MarginalModel, ParameterConfig,
    SeedSynthesizer,
};
use std::sync::Arc;

/// Build a small random dataset over a 3-attribute schema.
fn dataset(values: &[(u8, u8, u8)]) -> Dataset {
    let schema = Arc::new(
        Schema::new(vec![
            Attribute::categorical_anon("A", 3),
            Attribute::categorical_anon("B", 4),
            Attribute::categorical_anon("C", 2),
        ])
        .unwrap(),
    );
    let records = values
        .iter()
        .map(|&(a, b, c)| Record::new(vec![a as u16 % 3, b as u16 % 4, c as u16 % 2]))
        .collect();
    Dataset::from_records_unchecked(schema, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every conditional distribution the CPT store materializes is a valid
    /// probability distribution, for arbitrary training data and noise levels.
    #[test]
    fn cpt_conditionals_are_distributions(
        rows in proptest::collection::vec((0u8..3, 0u8..4, 0u8..2), 5..60),
        epsilon in proptest::option::of(0.05f64..5.0),
        sample in any::<bool>(),
    ) {
        let data = dataset(&rows);
        let graph = DependencyGraph::from_parent_sets(vec![vec![], vec![0], vec![0, 1]]).unwrap();
        let bkt = Bucketizer::identity(data.schema());
        let config = ParameterConfig {
            epsilon_p: epsilon,
            sample_parameters: sample,
            global_seed: 9,
            ..ParameterConfig::default()
        };
        let store = CptStore::learn(&data, &bkt, &graph, config).unwrap();
        for attr in 0..3 {
            for c in 0..store.configurations(attr) {
                let dist = store.conditional(attr, c);
                prop_assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                prop_assert!(dist.iter().all(|&p| p >= 0.0));
            }
        }
    }

    /// Seed-based synthesis always produces records inside the schema domain,
    /// keeps the non-resampled attributes, and assigns them probability
    /// consistent with the kept/resampled split.
    #[test]
    fn synthesis_respects_domains_and_kept_attributes(
        rows in proptest::collection::vec((0u8..3, 0u8..4, 0u8..2), 10..60),
        omega in 1usize..=3,
        seed_idx in 0usize..10,
        rng_seed in 0u64..1000,
    ) {
        let data = dataset(&rows);
        let graph = DependencyGraph::from_parent_sets(vec![vec![], vec![0], vec![1]]).unwrap();
        let bkt = Bucketizer::identity(data.schema());
        let store = Arc::new(CptStore::learn(&data, &bkt, &graph, ParameterConfig::default()).unwrap());
        let synthesizer = SeedSynthesizer::new(store, omega).unwrap();
        let seed = data.record(seed_idx % data.len()).clone();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let y = synthesizer.generate(&seed, &mut rng);
        data.schema().validate_values(y.values()).unwrap();
        for &attr in synthesizer.kept_attributes() {
            prop_assert_eq!(y.get(attr), seed.get(attr));
        }
        let p = synthesizer.probability(&seed, &y);
        prop_assert!(p > 0.0 && p <= 1.0 + 1e-12);
    }

    /// The marginal baseline is seed-independent: identical probability for
    /// any pair of seeds, and the probability factorizes over attributes.
    #[test]
    fn marginal_model_is_seed_independent(
        rows in proptest::collection::vec((0u8..3, 0u8..4, 0u8..2), 5..50),
        candidate in (0u8..3, 0u8..4, 0u8..2),
    ) {
        let data = dataset(&rows);
        let model = MarginalModel::learn(&data, MarginalConfig::default()).unwrap();
        let y = Record::new(vec![candidate.0 as u16, candidate.1 as u16, candidate.2 as u16]);
        let seed_a = data.record(0).clone();
        let seed_b = data.record(data.len() - 1).clone();
        let pa = model.probability(&seed_a, &y);
        let pb = model.probability(&seed_b, &y);
        prop_assert!((pa - pb).abs() < 1e-15);
        let factorized: f64 = (0..3).map(|i| model.marginal(i)[y.get(i) as usize]).product();
        prop_assert!((pa - factorized).abs() < 1e-12);
    }
}
