//! Property-based integration tests on the privacy-critical invariants.

use proptest::prelude::*;
use sgf::core::{partition_index, ReleaseBudget};
use sgf::stats::{
    advanced_composition, sampling_amplification, sequential_composition, total_variation,
    DpBudget, Laplace,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The partition index always satisfies the defining geometric inequality
    /// gamma^{-(i+1)} < p <= gamma^{-i}.
    #[test]
    fn partition_index_defining_inequality(p in 1e-12f64..1.0, gamma in 1.01f64..20.0) {
        let i = partition_index(p, gamma).expect("positive probability has a partition");
        let upper = gamma.powi(-(i as i32));
        let lower = gamma.powi(-(i as i32 + 1));
        prop_assert!(p <= upper * (1.0 + 1e-12));
        prop_assert!(p > lower * (1.0 - 1e-12));
    }

    /// Probabilities within a factor gamma of each other land in the same or
    /// adjacent partitions (never further apart).
    #[test]
    fn nearby_probabilities_have_nearby_partitions(p in 1e-9f64..0.999, gamma in 1.1f64..10.0, factor in 0.5f64..1.0) {
        let q = p * factor.max(1.0 / gamma);
        let pi = partition_index(p, gamma).unwrap();
        let qi = partition_index(q, gamma).unwrap();
        prop_assert!(qi >= pi);
        prop_assert!(qi - pi <= 1);
    }

    /// Theorem 1: epsilon decreases in t, delta increases in t, and both are valid.
    #[test]
    fn theorem1_monotone_in_t(k in 3usize..200, gamma in 1.5f64..10.0, eps0 in 0.1f64..3.0) {
        let budgets: Vec<_> = (1..k).map(|t| ReleaseBudget::at(k, gamma, eps0, t).unwrap()).collect();
        for pair in budgets.windows(2) {
            prop_assert!(pair[1].budget.epsilon <= pair[0].budget.epsilon + 1e-12);
            prop_assert!(pair[1].budget.delta >= pair[0].budget.delta - 1e-18);
        }
        for b in &budgets {
            prop_assert!(b.budget.is_valid());
        }
    }

    /// Sequential composition is additive and never smaller than any component.
    #[test]
    fn sequential_composition_dominates_components(eps in proptest::collection::vec(0.0f64..2.0, 1..6)) {
        let parts: Vec<DpBudget> = eps.iter().map(|&e| DpBudget::new(e, 1e-9)).collect();
        let total = sequential_composition(&parts);
        for p in &parts {
            prop_assert!(total.epsilon >= p.epsilon - 1e-12);
        }
        prop_assert!((total.epsilon - eps.iter().sum::<f64>()).abs() < 1e-9);
    }

    /// Sub-sampling amplification never increases the budget.
    #[test]
    fn amplification_never_hurts(eps in 0.01f64..5.0, delta in 0.0f64..1e-3, rate in 0.0f64..1.0) {
        let amplified = sampling_amplification(DpBudget::new(eps, delta), rate);
        prop_assert!(amplified.epsilon <= eps + 1e-12);
        prop_assert!(amplified.delta <= delta + 1e-18);
    }

    /// Advanced composition grows monotonically with the number of queries.
    #[test]
    fn advanced_composition_monotone_in_k(eps in 0.001f64..0.5, k in 1u64..200) {
        let small = advanced_composition(eps, 0.0, k, 1e-9);
        let large = advanced_composition(eps, 0.0, k + 1, 1e-9);
        prop_assert!(large.epsilon >= small.epsilon);
    }

    /// Total variation distance is a metric-like quantity: symmetric and in [0, 1].
    #[test]
    fn total_variation_properties(raw_p in proptest::collection::vec(0.0f64..1.0, 4), raw_q in proptest::collection::vec(0.0f64..1.0, 4)) {
        let normalize = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum::<f64>().max(1e-12);
            v.iter().map(|x| x / s).collect()
        };
        let p = normalize(&raw_p);
        let q = normalize(&raw_q);
        let d = total_variation(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
        prop_assert!((d - total_variation(&q, &p)).abs() < 1e-12);
        prop_assert!(total_variation(&p, &p) < 1e-12);
    }

    /// The Laplace CDF is the inverse of the survival function and monotone.
    #[test]
    fn laplace_cdf_properties(scale in 0.01f64..10.0, z in -50.0f64..50.0) {
        let lap = Laplace::new(scale);
        prop_assert!((lap.cdf(z) + lap.survival(z) - 1.0).abs() < 1e-12);
        prop_assert!(lap.cdf(z) <= lap.cdf(z + 1.0) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lap.cdf(z)));
    }
}
