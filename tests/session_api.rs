//! Integration tests for the staged synthesis-session API: train once, serve
//! many `generate` requests, accumulate the privacy ledger, and accept any
//! `GenerativeModel` implementation through the mechanism.

use sgf::core::{
    GenerateRequest, PipelineConfig, PrivacyTestConfig, SynthesisEngine, SynthesisPipeline,
};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf::model::{GenerativeModel, MarginalModel, OmegaSpec};

fn small_config(target: usize, seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::paper_defaults(target);
    config.privacy_test =
        PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2_000));
    config.max_candidate_factor = 30;
    config.seed = seed;
    config
}

/// A session trains exactly once and serves ≥ 3 sequential requests; the
/// ledger grows monotonically and stays consistent with the per-request stats.
#[test]
fn session_serves_three_requests_with_monotone_ledger() {
    let population = generate_acs(4_000, 21);
    let bucketizer = acs_bucketizer(&acs_schema());
    let session = SynthesisEngine::from_config(small_config(1, 21))
        .train(&population, &bucketizer)
        .unwrap();

    let mut cumulative_releases = 0usize;
    let mut last_epsilon = 0.0f64;
    for (i, request_seed) in [3u64, 5, 7].iter().enumerate() {
        let report = session
            .generate(&GenerateRequest::new(20).with_seed(*request_seed))
            .unwrap();
        assert!(!report.synthetics.is_empty());
        assert!(report.synthetics.len() <= 20);
        assert_eq!(report.synthetics.len(), report.stats.released);
        for record in report.synthetics.records() {
            population
                .schema()
                .validate_values(record.values())
                .unwrap();
        }
        cumulative_releases += report.stats.released;
        assert_eq!(report.ledger.requests, i + 1);
        assert_eq!(report.ledger.releases, cumulative_releases);
        let epsilon = report.ledger.cumulative_release().epsilon;
        assert!(
            epsilon > last_epsilon,
            "cumulative epsilon must grow with every request ({epsilon} vs {last_epsilon})"
        );
        last_epsilon = epsilon;
    }
    assert_eq!(session.ledger().releases, cumulative_releases);
    assert_eq!(session.ledger().requests, 3);
}

/// The compatibility wrapper and the staged API agree: `SynthesisPipeline::run`
/// releases exactly the records (and budget) of builder → train → one
/// `generate` with the same parameters.
#[test]
fn one_shot_run_matches_train_then_generate() {
    let population = generate_acs(3_500, 22);
    let bucketizer = acs_bucketizer(&acs_schema());
    let config = small_config(25, 22);

    let one_shot = SynthesisPipeline::new(config)
        .run(&population, &bucketizer)
        .unwrap();

    let session = SynthesisEngine::from_config(config)
        .train(&population, &bucketizer)
        .unwrap();
    let report = session
        .generate(
            &GenerateRequest::new(25)
                .with_omega(config.omega)
                .with_seed(config.seed),
        )
        .unwrap();

    assert_eq!(one_shot.synthetics.records(), report.synthetics.records());
    assert_eq!(one_shot.stats, report.stats);
    assert_eq!(one_shot.budget.releases, report.ledger.releases);
    assert_eq!(one_shot.budget.per_release, report.ledger.per_release);
    assert_eq!(one_shot.budget.total(), report.ledger.total());
}

/// Splitting one big request into several smaller ones over the same session
/// spends the same cumulative budget as the one-shot accounting for the same
/// number of releases.
#[test]
fn ledger_matches_equivalent_one_shot_accounting() {
    let population = generate_acs(3_500, 23);
    let bucketizer = acs_bucketizer(&acs_schema());
    let session = SynthesisEngine::from_config(small_config(1, 23))
        .train(&population, &bucketizer)
        .unwrap();

    for request_seed in 0..4u64 {
        session
            .generate(&GenerateRequest::new(10).with_seed(request_seed))
            .unwrap();
    }
    let ledger = session.ledger();
    assert_eq!(ledger.requests, 4);
    // The equivalent one-shot budget over the same number of releases.
    let one_shot = ledger.as_pipeline_budget();
    assert_eq!(one_shot.releases, ledger.releases);
    assert_eq!(one_shot.total(), ledger.total());
    let per_release = ledger.per_release.expect("randomized test has a bound");
    assert!(
        (ledger.cumulative_release().epsilon - ledger.releases as f64 * per_release.epsilon).abs()
            < 1e-9
    );
}

/// Multi-worker requests keep the count and accounting exact, and release the
/// full target when candidates are plentiful.
#[test]
fn multi_worker_requests_keep_accounting_exact() {
    let population = generate_acs(4_000, 24);
    let bucketizer = acs_bucketizer(&acs_schema());
    let session = SynthesisEngine::from_config(small_config(1, 24))
        .train(&population, &bucketizer)
        .unwrap();

    for workers in [1usize, 2, 4] {
        let before = session.ledger().releases;
        let report = session
            .generate(
                &GenerateRequest::new(30)
                    .with_workers(workers)
                    .with_seed(workers as u64),
            )
            .unwrap();
        assert!(!report.synthetics.is_empty());
        assert!(report.synthetics.len() <= 30);
        // Accounting stays exact even when workers race for the last slots.
        assert_eq!(report.synthetics.len(), report.stats.released);
        assert!(report.stats.released <= report.stats.candidates);
        assert_eq!(session.ledger().releases, before + report.stats.released);
    }
}

/// A `GenerativeModel` trait object (the marginal baseline) passes through the
/// same mechanism and budget accounting as the seed-based synthesizer.
#[test]
fn trait_object_model_serves_through_the_session() {
    let population = generate_acs(3_000, 25);
    let bucketizer = acs_bucketizer(&acs_schema());
    let session = SynthesisEngine::from_config(small_config(1, 25))
        .train(&population, &bucketizer)
        .unwrap();

    // Both the session-owned marginal and an externally learned one work.
    let external = MarginalModel::learn(session.seeds(), Default::default()).unwrap();
    let as_object: &dyn GenerativeModel = &external;
    let report = session
        .generate_with(as_object, &GenerateRequest::new(12).with_seed(1))
        .unwrap();
    // Seed-independent model: every record is an equally plausible seed, so
    // every candidate passes (Section 8).
    assert_eq!(report.stats.released, 12);
    assert!((report.stats.pass_rate() - 1.0).abs() < 1e-12);
    assert_eq!(session.ledger().releases, 12);

    // The seed-based synthesizer path still works on the same session, and
    // keeps charging the same ledger.
    let second = session
        .generate(&GenerateRequest::new(8).with_seed(2))
        .unwrap();
    assert_eq!(session.ledger().releases, 12 + second.stats.released);
}

/// The streaming iterator releases the same records as a single-worker
/// `generate` with the same request seed, charging the ledger incrementally.
#[test]
fn release_iter_matches_generate_and_streams_budget() {
    let population = generate_acs(3_500, 26);
    let bucketizer = acs_bucketizer(&acs_schema());
    let session = SynthesisEngine::from_config(small_config(1, 26))
        .train(&population, &bucketizer)
        .unwrap();

    let request = GenerateRequest::new(10).with_seed(4).with_workers(1);
    let reference = session.generate(&request).unwrap();
    let after_reference = session.ledger().releases;

    let mut streamed = Vec::new();
    let mut iter = session.release_iter(request).unwrap();
    for record in iter.by_ref() {
        streamed.push(record.unwrap());
        assert_eq!(
            session.ledger().releases,
            after_reference + streamed.len(),
            "every streamed record is charged as it is yielded"
        );
    }
    assert_eq!(reference.synthetics.records(), &streamed[..]);
    assert_eq!(iter.stats().released, streamed.len());
    assert_eq!(session.ledger().requests, 2);
}

/// Session clones are handles to the same logical session: a `ReleaseIter`
/// streaming on a clone yields byte-identical records to a single-worker
/// `generate` on the original, and both charge the one shared ledger.
#[test]
fn cloned_session_streams_identically_and_shares_the_ledger() {
    let population = generate_acs(3_500, 28);
    let bucketizer = acs_bucketizer(&acs_schema());
    let session = SynthesisEngine::from_config(small_config(1, 28))
        .train(&population, &bucketizer)
        .unwrap();
    let clone = session.clone();

    let request = GenerateRequest::new(10).with_seed(9).with_workers(1);
    let reference = session.generate(&request).unwrap();

    let mut iter = clone.release_iter(request).unwrap();
    let streamed: Vec<_> = iter.by_ref().map(|r| r.unwrap()).collect();
    assert_eq!(reference.synthetics.records(), &streamed[..]);

    // One ledger across both handles: two requests, double the releases.
    for handle in [&session, &clone] {
        let ledger = handle.ledger();
        assert_eq!(ledger.requests, 2);
        assert_eq!(ledger.releases, 2 * reference.stats.released);
    }
}

/// The in-process reservation API: `try_reserve` enforces the cap atomically,
/// `generate_reserved` commits actual releases and frees the rest, and failed
/// or aborted reservations never leak.
#[test]
fn reservation_api_caps_generation_without_leaks() {
    use sgf::core::CoreError;

    let population = generate_acs(3_500, 29);
    let bucketizer = acs_bucketizer(&acs_schema());
    let session = SynthesisEngine::from_config(small_config(1, 29))
        .train(&population, &bucketizer)
        .unwrap();
    let cap = sgf::serve::cap_admitting(&session, 10).unwrap();

    // The cap admits exactly 10 records' worth of reservations.
    session.try_reserve(10, cap).unwrap();
    assert!(matches!(
        session.try_reserve(1, cap),
        Err(CoreError::BudgetCapExceeded { .. })
    ));
    assert_eq!(session.ledger().reserved, 10);

    // Committing through the marginal model releases exactly the target and
    // frees the unused part of the reservation.
    let report = session
        .generate_reserved_with(
            &session.models().marginal,
            10,
            &GenerateRequest::new(8).with_seed(1),
        )
        .unwrap();
    assert_eq!(report.stats.released, 8);
    let ledger = session.ledger();
    assert_eq!((ledger.releases, ledger.reserved), (8, 0));

    // The freed budget is admissible again; aborting hands it back untouched.
    session.try_reserve(2, cap).unwrap();
    session.abort_reservation(2);
    assert!(
        session.try_reserve(3, cap).is_err(),
        "only 2 records remain"
    );
    session.try_reserve(2, cap).unwrap();

    // A reserved generate whose target exceeds the reservation fails and
    // settles (aborts) the reservation — nothing leaks.
    assert!(session
        .generate_reserved(2, &GenerateRequest::new(5).with_seed(2))
        .is_err());
    let ledger = session.ledger();
    assert_eq!((ledger.releases, ledger.reserved), (8, 0));
    assert!(ledger.total().epsilon <= cap.epsilon);
}

/// A reservation-backed `ReleaseIter` keeps the ledger's worst case exact for
/// the whole stream: each yielded record converts one reserved record, so
/// `releases + reserved` never exceeds what admission approved.
#[test]
fn reserved_streaming_keeps_the_worst_case_exact() {
    let population = generate_acs(3_500, 30);
    let bucketizer = acs_bucketizer(&acs_schema());
    let session = SynthesisEngine::from_config(small_config(1, 30))
        .train(&population, &bucketizer)
        .unwrap();
    let target = 8usize;
    let cap = sgf::serve::cap_admitting(&session, target).unwrap();

    session.try_reserve(target, cap).unwrap();
    let mut iter = session
        .release_iter_reserved(target, GenerateRequest::new(target).with_seed(3))
        .unwrap();
    let mut streamed = 0usize;
    for record in iter.by_ref() {
        record.unwrap();
        streamed += 1;
        let ledger = session.ledger();
        // Conversion, not double-charging: the approved total never moves.
        assert_eq!(ledger.releases, streamed);
        assert_eq!(ledger.releases + ledger.reserved, target);
        assert!(ledger.reserved_total().epsilon <= cap.epsilon);
        assert!(ledger.reserved_total().delta <= cap.delta);
    }
    // Settle the unstreamed remainder; nothing leaks.
    session.abort_reservation(target - streamed);
    let ledger = session.ledger();
    assert_eq!(ledger.reserved, 0);
    assert_eq!(ledger.releases, streamed);
    assert_eq!(ledger.requests, 1);

    // A reserved stream whose target exceeds its reservation fails to open
    // and settles (aborts) the reservation on the way out.
    let wider_cap = sgf::serve::cap_admitting(&session, streamed + 3).unwrap();
    session.try_reserve(3, wider_cap).unwrap();
    assert!(session
        .release_iter_reserved(3, GenerateRequest::new(4).with_seed(4))
        .is_err());
    assert_eq!(session.ledger().reserved, 0);
}

/// The `Auto` policy crossover is configurable: `auto_index_min_seeds`
/// replaces the old hard-coded 512-seed threshold, so deployments can pin the
/// measured scan/index crossover of their hardware.  Store choice is
/// decision-equivalent, so moving the threshold never changes the records —
/// only which store serves the tests.
#[test]
fn auto_index_min_seeds_override_moves_the_crossover() {
    use sgf::core::SeedIndex;

    let population = generate_acs(4_000, 33);
    let bucketizer = acs_bucketizer(&acs_schema());

    // Default crossover (512): ~1960 seeds qualify, Auto serves via an index.
    let default_cfg = small_config(1, 33);
    assert_eq!(
        default_cfg.auto_index_min_seeds,
        SeedIndex::AUTO_MIN_SEEDS,
        "paper defaults carry the documented crossover"
    );
    let indexed = SynthesisEngine::from_config(default_cfg)
        .train(&population, &bucketizer)
        .unwrap();
    let indexed_report = indexed
        .generate(&GenerateRequest::new(10).with_seed(5))
        .unwrap();
    assert_eq!(indexed_report.stats.scan_tests, 0);

    // Raised crossover: the same seed store now falls back to the scan...
    let mut raised_cfg = small_config(1, 33);
    raised_cfg.auto_index_min_seeds = 100_000;
    let scanned = SynthesisEngine::from_config(raised_cfg)
        .train(&population, &bucketizer)
        .unwrap();
    let scanned_report = scanned
        .generate(&GenerateRequest::new(10).with_seed(5))
        .unwrap();
    assert_eq!(
        scanned_report.stats.scan_tests,
        scanned_report.stats.candidates
    );
    // ...releasing byte-identical records: the knob is pure performance.
    assert_eq!(
        indexed_report.synthetics.records(),
        scanned_report.synthetics.records()
    );

    // Explicit per-request store overrides ignore the crossover entirely.
    let forced = scanned
        .generate(
            &GenerateRequest::new(10)
                .with_seed(5)
                .with_seed_index(SeedIndex::Partition),
        )
        .unwrap();
    assert_eq!(forced.stats.partition_tests, forced.stats.candidates);
    assert_eq!(
        forced.synthetics.records(),
        scanned_report.synthetics.records()
    );
}

/// ω can vary per request without retraining; invalid overrides are rejected.
#[test]
fn per_request_omega_overrides_work() {
    let population = generate_acs(3_500, 27);
    let bucketizer = acs_bucketizer(&acs_schema());
    let session = SynthesisEngine::from_config(small_config(1, 27))
        .train(&population, &bucketizer)
        .unwrap();

    let fixed = session
        .generate(
            &GenerateRequest::new(10)
                .with_omega(OmegaSpec::Fixed(11))
                .with_seed(1),
        )
        .unwrap();
    assert!(!fixed.synthetics.is_empty());
    let ranged = session
        .generate(
            &GenerateRequest::new(10)
                .with_omega(OmegaSpec::UniformRange { lo: 9, hi: 11 })
                .with_seed(2),
        )
        .unwrap();
    assert!(!ranged.synthetics.is_empty());
    assert!(session
        .generate(
            &GenerateRequest::new(10)
                .with_omega(OmegaSpec::Fixed(0))
                .with_seed(3)
        )
        .is_err());
}
