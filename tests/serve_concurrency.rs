//! Concurrency harness for the release service: a 16-thread client storm
//! against one session under an (ε, δ) cap sized so that exactly K requests
//! can be admitted.  Verifies the acceptance bar of the serve layer:
//!
//! * exactly K requests succeed, every other one is rejected with a
//!   machine-readable `budget_exhausted` reason carrying the requested/cap
//!   budgets;
//! * the ledger never exceeds the cap at any observed point (a monitor
//!   thread polls the `ledger` verb throughout the storm and checks the
//!   worst-case `reserved_epsilon`/`reserved_delta`);
//! * the final ledger equals the composed (ε, δ) of exactly the K admitted
//!   releases, with no leaked reservations;
//! * re-running the successful per-request seeds against a fresh,
//!   identically-trained session reproduces byte-identical releases.
//!
//! The storm runs the marginal model: it is seed-independent, so every
//! candidate passes the privacy test (Section 8) and each admitted request
//! releases exactly its target — which is what makes "exactly K admitted"
//! deterministic (no freed partial reservations reopening admission).

use sgf::core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine, SynthesisSession};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf::serve::{
    cap_admitting, reject, serve, Client, ClientError, GenerateCall, ModelKind, ServeConfig,
    SessionEntry,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn train_session(seed: u64) -> SynthesisSession {
    let population = generate_acs(4_000, seed);
    let bucketizer = acs_bucketizer(&acs_schema());
    SynthesisEngine::builder()
        .privacy_test(
            PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2_000)),
        )
        .max_candidate_factor(30)
        .seed(seed)
        .train(&population, &bucketizer)
        .unwrap()
}

const STORM_CLIENTS: u64 = 16;
const ADMITTED: usize = 3; // K
const TARGET: usize = 4; // records per request

fn storm_call(seed: u64) -> GenerateCall {
    GenerateCall::new(TARGET)
        .with_model(ModelKind::Marginal)
        .with_request(GenerateRequest::new(TARGET).with_seed(seed))
}

#[test]
fn sixteen_thread_storm_admits_exactly_k_requests() {
    let session = train_session(31);
    let local = session.clone();
    let per_release = session.per_release_budget().unwrap();
    let cap = cap_admitting(&session, ADMITTED * TARGET).unwrap();
    // Exact-admission counting requires the composed release budget to
    // dominate the model budget — sanity-check the sizing assumption.
    assert!(
        (ADMITTED * TARGET) as f64 * per_release.epsilon > local.ledger().model_budget().epsilon,
        "cap sizing assumption violated: model budget dominates"
    );

    let handle = serve(
        ServeConfig {
            queue_capacity: STORM_CLIENTS as usize * 2,
            workers: 4,
            ..ServeConfig::default()
        },
        vec![SessionEntry::new(session).capped(cap)],
    )
    .unwrap();
    let addr = handle.addr();

    // Monitor: poll the ledger throughout the storm; the worst-case exposure
    // (committed + reserved) must never exceed the cap at any point.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor_stop = Arc::clone(&stop);
    let monitor = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut snapshots = 0usize;
        while !monitor_stop.load(Ordering::SeqCst) {
            let response = client.ledger("default").unwrap();
            let ledger = response.get("ledger").expect("ledger object");
            let reserved_epsilon = ledger
                .get("reserved_epsilon")
                .and_then(|v| v.as_f64())
                .expect("finite reserved_epsilon");
            let reserved_delta = ledger
                .get("reserved_delta")
                .and_then(|v| v.as_f64())
                .expect("finite reserved_delta");
            assert!(
                reserved_epsilon <= cap.epsilon && reserved_delta <= cap.delta,
                "observed worst case (ε = {reserved_epsilon}, δ = {reserved_delta}) \
                 over the cap (ε = {}, δ = {})",
                cap.epsilon,
                cap.delta
            );
            snapshots += 1;
            std::thread::sleep(Duration::from_millis(1));
        }
        snapshots
    });

    // The storm: one connection per client thread, all firing at once.
    let outcomes: Vec<(u64, Result<Vec<sgf::data::Record>, ClientError>)> =
        std::thread::scope(|scope| {
            (0..STORM_CLIENTS)
                .map(|seed| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        let result = client
                            .generate(&storm_call(seed))
                            .map(|release| release.records);
                        (seed, result)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
    stop.store(true, Ordering::SeqCst);
    let snapshots = monitor.join().unwrap();
    assert!(snapshots > 0, "the monitor must observe the storm");

    // Exactly K succeed with full targets; everyone else gets a
    // machine-readable budget rejection carrying the requested/cap budgets.
    let mut admitted = Vec::new();
    for (seed, outcome) in outcomes {
        match outcome {
            Ok(records) => {
                assert_eq!(records.len(), TARGET, "marginal model must fill the target");
                admitted.push((seed, records));
            }
            Err(ClientError::Rejected(rejection)) => {
                assert_eq!(rejection.code, reject::BUDGET_EXHAUSTED);
                let requested = rejection
                    .detail
                    .get("requested_epsilon")
                    .and_then(|v| v.as_f64())
                    .expect("rejection carries requested_epsilon");
                let capped = rejection
                    .detail
                    .get("cap_epsilon")
                    .and_then(|v| v.as_f64())
                    .expect("rejection carries cap_epsilon");
                assert!(requested > capped);
            }
            Err(other) => panic!("seed {seed}: unexpected failure {other}"),
        }
    }
    assert_eq!(
        admitted.len(),
        ADMITTED,
        "exactly K requests must be admitted"
    );

    // Final ledger: the composed (ε, δ) of exactly the K admitted releases,
    // nothing reserved, never over the cap.
    let ledger = local.ledger();
    assert_eq!(ledger.requests, ADMITTED);
    assert_eq!(ledger.releases, ADMITTED * TARGET);
    assert_eq!(ledger.reserved, 0, "reservations must not leak");
    let expected_epsilon = (ADMITTED * TARGET) as f64 * per_release.epsilon;
    assert!((ledger.cumulative_release().epsilon - expected_epsilon).abs() < 1e-9);
    assert!(ledger.total().epsilon <= cap.epsilon);
    assert!(ledger.total().delta <= cap.delta);

    let mut closer = Client::connect(addr).unwrap();
    closer.shutdown().unwrap();
    handle.join().unwrap();

    // Determinism: a fresh, identically-trained session re-serves the same
    // per-request seeds with byte-identical records.
    let replay = train_session(31);
    for (seed, records) in admitted {
        let report = replay
            .generate_with(
                &replay.models().marginal,
                &GenerateRequest::new(TARGET).with_seed(seed),
            )
            .unwrap();
        assert_eq!(
            report.synthetics.records(),
            &records[..],
            "seed {seed} must reproduce byte-identical records"
        );
    }
}

/// Backpressure: with one worker (artificially slowed), a queue of depth one,
/// and three overlapping requests, the third is rejected with `queue_full`
/// and the configured retry hint — and the two admitted requests complete.
#[test]
fn full_queue_rejects_with_retry_hint() {
    let session = train_session(32);
    // A unique session name isolates this test's observed-latency cell: the
    // storm test shares the process-global metrics registry, and a completed
    // generate on the same session name would replace the configured retry
    // constant with an observed p95.
    let handle = serve(
        ServeConfig {
            queue_capacity: 1,
            workers: 1,
            retry_after_ms: 25,
            service_delay: Some(Duration::from_millis(800)),
            ..ServeConfig::default()
        },
        vec![SessionEntry::new(session).named("backpressure")],
    )
    .unwrap();
    let addr = handle.addr();

    let wait_for = |predicate: &dyn Fn(&sgf::serve::json::Value) -> bool, what: &str| {
        let mut client = Client::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let status = client.status().unwrap();
            if predicate(&status) {
                return;
            }
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    std::thread::scope(|scope| {
        // A occupies the (slowed) worker...
        let a = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.generate(&storm_call(1).with_session("backpressure"))
        });
        wait_for(
            &|s| s.get("busy_workers").and_then(|v| v.as_u64()) == Some(1),
            "the worker to pick up request A",
        );
        // ...B fills the queue...
        let b = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.generate(&storm_call(2).with_session("backpressure"))
        });
        wait_for(
            &|s| s.get("queue_depth").and_then(|v| v.as_u64()) == Some(1),
            "request B to be queued",
        );
        // ...so C must bounce off the full queue with the retry hint.  No
        // generate on this session has completed yet, so the hint is the
        // configured fallback constant.
        let mut client = Client::connect(addr).unwrap();
        match client.generate(&storm_call(3).with_session("backpressure")) {
            Err(ClientError::Rejected(rejection)) => {
                assert_eq!(rejection.code, reject::QUEUE_FULL);
                assert_eq!(rejection.retry_after_ms, Some(25));
            }
            other => panic!("expected queue_full, got {other:?}"),
        }
        // The admitted requests still complete normally.
        assert_eq!(a.join().unwrap().unwrap().records.len(), TARGET);
        assert_eq!(b.join().unwrap().unwrap().records.len(), TARGET);
    });

    let mut closer = Client::connect(addr).unwrap();
    closer.shutdown().unwrap();
    handle.join().unwrap();
}

/// Request folding equivalence: a folded, cache-warm serve run (multi-worker,
/// multi-client, under the `service_delay` chaos knob) must release
/// byte-identical records per request seed to an unfolded run against an
/// identically-trained session with the class cache disabled — folding and
/// caching are pure throughput mechanisms, invisible in every released byte.
#[test]
fn folded_cached_serve_matches_unfolded_cold_cache_run() {
    const CLIENTS: u64 = 12;
    const FOLD_TARGET: usize = 6;
    type Outcomes = Vec<(u64, Vec<sgf::data::Record>)>;

    let run = |name: &'static str,
               cache: bool,
               max_fold: usize,
               delay: Option<Duration>|
     -> (Outcomes, u64) {
        let population = generate_acs(4_000, 77);
        let bucketizer = acs_bucketizer(&acs_schema());
        let session = SynthesisEngine::builder()
            .privacy_test(
                PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2_000)),
            )
            .max_candidate_factor(30)
            .class_cache(cache)
            .seed(77)
            .train(&population, &bucketizer)
            .unwrap();
        let handle = serve(
            ServeConfig {
                workers: 2,
                max_fold: Some(max_fold),
                service_delay: delay,
                queue_capacity: CLIENTS as usize * 2,
                ..ServeConfig::default()
            },
            vec![SessionEntry::new(session).named(name)],
        )
        .unwrap();
        let addr = handle.addr();
        let mut results: Outcomes = std::thread::scope(|scope| {
            (0..CLIENTS)
                .map(|seed| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        let call = GenerateCall::new(FOLD_TARGET)
                            .with_session(name)
                            .with_request(GenerateRequest::new(FOLD_TARGET).with_seed(seed));
                        (seed, client.generate(&call).unwrap().records)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        results.sort_by_key(|(seed, _)| *seed);
        let mut client = Client::connect(addr).unwrap();
        let folded_requests = client
            .metrics(Some(name), false)
            .unwrap()
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("serve.folded_requests"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        client.shutdown().unwrap();
        handle.join().unwrap();
        (results, folded_requests)
    };

    // Folded side: folding on, cache on, slowed workers so the queue builds
    // up and pops genuinely coalesce.  Cold side: folding off, cache off.
    let (folded, folded_requests) = run("folded", true, 8, Some(Duration::from_millis(150)));
    let (cold, cold_folds) = run("cold", false, 1, None);
    assert!(
        folded_requests > 0,
        "the folded run must actually coalesce requests"
    );
    assert_eq!(cold_folds, 0, "max_fold = 1 must disable folding");
    assert_eq!(folded.len(), cold.len());
    for ((seed_a, a), (seed_b, b)) in folded.iter().zip(&cold) {
        assert_eq!(seed_a, seed_b);
        assert!(!a.is_empty(), "seed {seed_a} released nothing");
        assert_eq!(
            a, b,
            "request seed {seed_a} must release byte-identical records"
        );
    }
}

/// Adaptive folding regression: with the default (adaptive) fold cap,
/// strictly sequential traffic — each request completing before the next is
/// sent — must never fold, because the worker always observes an empty queue
/// at pop time.  This is what keeps the sequential smoke documents
/// byte-identical to a fold-free server: no fold metrics, no fold spans, no
/// `fold` block in any provenance.
#[test]
fn sequential_traffic_never_folds_under_the_adaptive_cap() {
    let session = train_session(35);
    let handle = serve(
        ServeConfig {
            workers: 4,
            // The default: adaptive folding from observed queue depth.
            max_fold: None,
            ..ServeConfig::default()
        },
        vec![SessionEntry::new(session).named("sequential")],
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for seed in 0..8 {
        let release = client
            .generate(&storm_call(seed).with_session("sequential"))
            .unwrap();
        assert_eq!(release.records.len(), TARGET);
        assert!(
            release.provenance.get("fold").is_none(),
            "sequential request {seed} must not carry a fold block"
        );
    }
    let folds = client
        .metrics(Some("sequential"), false)
        .unwrap()
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("serve.folds"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    assert_eq!(folds, 0, "an empty queue must never fold");
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Satellite of the scope-cell hygiene fix: a flood of generate requests for
/// a made-up session name is rejected with `unknown_session` and leaves the
/// process-global metrics registry without a cell for that name — scope
/// cells exist for registered sessions only, so bogus names cannot grow the
/// registry without bound.
#[test]
fn rejected_unknown_session_allocates_no_metric_scope() {
    let session = train_session(34);
    let handle = serve(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        vec![SessionEntry::new(session).named("registered-only")],
    )
    .unwrap();
    let addr = handle.addr();
    let bogus = "bogus-session-that-never-registers";
    let bogus_key = format!("session={bogus}");
    let before = sgf::metrics::global().snapshot();
    assert!(!before.scopes.contains_key(&bogus_key));

    let mut client = Client::connect(addr).unwrap();
    for seed in 0..5 {
        match client.generate(&storm_call(seed).with_session(bogus)) {
            Err(ClientError::Rejected(rejection)) => {
                assert_eq!(rejection.code, reject::UNKNOWN_SESSION);
            }
            other => panic!("expected unknown_session, got {other:?}"),
        }
    }

    // The rejections allocated no scope cell for the bogus name (other tests
    // in this binary may touch *registered* scopes concurrently, so the
    // assertion is about the bogus key, not total snapshot equality).
    let after = sgf::metrics::global().snapshot();
    assert!(!after.scopes.contains_key(&bogus_key));
    assert!(
        after.scopes.keys().all(|key| !key.contains("bogus")),
        "no scope cell may be created for an unregistered session"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Chaos knob: once a generate on the session has completed, `queue_full`
/// rejections stop quoting the configured constant and instead carry the
/// p95 upper bound of the session's *observed* service time — which, with
/// an injected delay, is dominated by the delay itself.
#[test]
fn retry_hint_tracks_observed_service_time() {
    let session = train_session(33);
    let delay_ms: u64 = 200;
    let handle = serve(
        ServeConfig {
            queue_capacity: 1,
            workers: 1,
            retry_after_ms: 25,
            service_delay: Some(Duration::from_millis(delay_ms)),
            ..ServeConfig::default()
        },
        vec![SessionEntry::new(session).named("chaos")],
    )
    .unwrap();
    let addr = handle.addr();
    let call = |seed: u64| storm_call(seed).with_session("chaos");

    let wait_for = |predicate: &dyn Fn(&sgf::serve::json::Value) -> bool, what: &str| {
        let mut client = Client::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let status = client.status().unwrap();
            if predicate(&status) {
                return;
            }
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    // One completed request seeds the session's service-time summary with a
    // latency dominated by the injected delay.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.generate(&call(1)).unwrap().records.len(), TARGET);
    // The worker records the observation after writing the response; wait
    // until the session's noisy metrics cell shows it.
    {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let observed = client
                .metrics(Some("chaos"), true)
                .unwrap()
                .get("metrics")
                .and_then(|m| m.get("summaries"))
                .and_then(|s| s.get("serve.generate_ms"))
                .and_then(|s| s.get("count"))
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            if observed >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "service-time summary never recorded"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    std::thread::scope(|scope| {
        let a = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.generate(&call(2))
        });
        wait_for(
            &|s| s.get("busy_workers").and_then(|v| v.as_u64()) == Some(1),
            "the worker to pick up the occupying request",
        );
        let b = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.generate(&call(3))
        });
        wait_for(
            &|s| s.get("queue_depth").and_then(|v| v.as_u64()) == Some(1),
            "the queue-filling request to be queued",
        );
        let mut client = Client::connect(addr).unwrap();
        match client.generate(&call(4)) {
            Err(ClientError::Rejected(rejection)) => {
                assert_eq!(rejection.code, reject::QUEUE_FULL);
                let hint = rejection.retry_after_ms.expect("queue_full carries a hint");
                // Honest hint: at least the injected delay, not the config
                // constant.
                assert!(
                    hint >= delay_ms,
                    "hint {hint}ms below the {delay_ms}ms observed floor"
                );
                assert_ne!(hint, 25, "hint must come from the observed p95");
            }
            other => panic!("expected queue_full, got {other:?}"),
        }
        assert_eq!(a.join().unwrap().unwrap().records.len(), TARGET);
        assert_eq!(b.join().unwrap().unwrap().records.len(), TARGET);
    });

    let mut closer = Client::connect(addr).unwrap();
    closer.shutdown().unwrap();
    handle.join().unwrap();
}
