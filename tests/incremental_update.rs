//! Property-based equivalence of incremental session updates: random delta
//! sequences — empty, insert-only, delete-only, mixed, and full-replacement
//! deltas — chained through `SynthesisSession::update` must leave the session
//! byte-identical to a from-scratch `train` on the canonical final dataset:
//! same split subsets, same learned structure (including the re-learn path,
//! which fires whenever the delta touches `D_T`), same CPTs, marginals, and
//! sufficient statistics, same posting lists and equivalence classes, and
//! byte-identical releases for identically-seeded requests.

use proptest::prelude::*;
use sgf::core::{GenerateRequest, PipelineConfig, PrivacyTestConfig, SynthesisEngine};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf::data::{Dataset, DatasetDelta};
use sgf::model::OmegaSpec;

fn small_config(seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::paper_defaults(1);
    config.privacy_test =
        PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2_000));
    config.omega = OmegaSpec::Fixed(9);
    config.max_candidate_factor = 30;
    config.seed = seed;
    config
}

/// Deterministic index picker (splitmix-style) so delete targets are spread
/// through the dataset without consuming a proptest strategy per index.
fn pick_indices(len: usize, count: usize, mut state: u64) -> Vec<usize> {
    let mut indices = std::collections::BTreeSet::new();
    for _ in 0..count {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        indices.insert((state % len.max(1) as u64) as usize);
    }
    indices.into_iter().collect()
}

/// Stage `count` deletions spread through the current dataset.  Distinct
/// indices may hold equal values; deleting both is still valid because each
/// occurrence contributes one multiplicity (Z-set semantics).
fn delete_spread(delta: &mut DatasetDelta, current: &Dataset, count: usize, salt: u64) {
    for index in pick_indices(current.len(), count, salt) {
        delta
            .delete(current.record(index).clone())
            .expect("in-domain record deletes cleanly");
    }
}

/// Build one delta of the given shape against the current dataset.
fn delta_of_shape(current: &Dataset, shape: usize, salt: u64) -> DatasetDelta {
    let mut delta = DatasetDelta::new(current.schema_arc());
    match shape {
        // Empty: an epoch bump with no data change.
        0 => {}
        // Insert-only.
        1 => {
            for record in generate_acs(8, salt ^ 0xA5A5).records() {
                delta.insert(record.clone()).unwrap();
            }
        }
        // Delete-only.
        2 => delete_spread(&mut delta, current, 6, salt),
        // Mixed.
        3 => {
            delete_spread(&mut delta, current, 5, salt);
            for record in generate_acs(7, salt ^ 0x5A5A).records() {
                delta.insert(record.clone()).unwrap();
            }
        }
        // Full replacement: retract every current record, insert a fresh
        // population.  Exercises the splice-vs-rebuild crossover and the
        // structure re-learn path with certainty.
        _ => {
            for record in current.records() {
                delta.delete(record.clone()).unwrap();
            }
            for record in generate_acs(1_800, salt ^ 0x3C3C).records() {
                delta.insert(record.clone()).unwrap();
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant under random delta sequences: after 1–3 chained
    /// updates of arbitrary shapes, the session is indistinguishable from a
    /// from-scratch retrain on the canonical final dataset.
    #[test]
    fn chained_updates_match_a_from_scratch_retrain(
        data_seed in 0u64..1_000,
        shapes in proptest::collection::vec(0usize..5, 1..4),
        change_seed in any::<u64>(),
        request_seed in any::<u64>(),
    ) {
        let bucketizer = acs_bucketizer(&acs_schema());
        let mut current = generate_acs(2_000, data_seed);
        let session = SynthesisEngine::from_config(small_config(data_seed))
            .train(&current, &bucketizer)
            .unwrap();
        prop_assert_eq!(session.epoch(), 0);

        let mut updated = session;
        for (step, &shape) in shapes.iter().enumerate() {
            let salt = change_seed ^ (step as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let delta = delta_of_shape(&current, shape, salt);
            current = delta.apply(&current).unwrap();
            updated = updated.update(&delta).unwrap();
            prop_assert_eq!(updated.epoch(), step as u64 + 1);
        }

        let fresh = SynthesisEngine::from_config(small_config(data_seed))
            .train(&current, &bucketizer)
            .unwrap();

        // The hash split commutes with every delta: all four subsets match.
        prop_assert_eq!(
            updated.split().structure.records(),
            fresh.split().structure.records()
        );
        prop_assert_eq!(
            updated.split().parameters.records(),
            fresh.split().parameters.records()
        );
        prop_assert_eq!(updated.split().seeds.records(), fresh.split().seeds.records());
        prop_assert_eq!(updated.split().test.records(), fresh.split().test.records());

        // Models and their summable sufficient statistics are bit-identical —
        // including the structure graph, which re-learned from merged counts
        // whenever a delta touched `D_T`.
        prop_assert_eq!(
            &updated.models().structure.graph,
            &fresh.models().structure.graph
        );
        prop_assert_eq!(
            &updated.models().structure.correlations,
            &fresh.models().structure.correlations
        );
        prop_assert_eq!(&*updated.models().cpts, &*fresh.models().cpts);
        prop_assert_eq!(&updated.models().marginal, &fresh.models().marginal);
        prop_assert_eq!(
            &updated.models().structure_counts,
            &fresh.models().structure_counts
        );
        prop_assert_eq!(
            &updated.models().marginal_counts,
            &fresh.models().marginal_counts
        );

        // Spliced posting lists and equivalence classes equal scratch builds
        // (and the incremental path made the same store-selection decision).
        prop_assert_eq!(updated.seed_store(), fresh.seed_store());
        prop_assert_eq!(updated.partition_store(), fresh.partition_store());

        // Identically-seeded requests release byte-identical records, with
        // the epoch stamped into provenance.
        let request = GenerateRequest::new(10).with_seed(request_seed);
        let a = updated.generate(&request).unwrap();
        let b = fresh.generate(&request).unwrap();
        prop_assert_eq!(a.synthetics.records(), b.synthetics.records());
        prop_assert_eq!(a.stats.released, b.stats.released);
        prop_assert_eq!(a.provenance.epoch, shapes.len() as u64);
        prop_assert_eq!(b.provenance.epoch, 0);
    }

    /// The documented relaxation: with a drift threshold no statistic can
    /// clear, every delta shape keeps the old structure verbatim while the
    /// seed subset (and therefore the served data) still tracks the canonical
    /// final dataset.
    #[test]
    fn drift_threshold_gates_the_relearn_without_losing_seed_fidelity(
        data_seed in 0u64..1_000,
        shape in 1usize..5,
        change_seed in any::<u64>(),
    ) {
        let bucketizer = acs_bucketizer(&acs_schema());
        let current = generate_acs(2_000, data_seed);
        let mut config = small_config(data_seed);
        config.drift_threshold = 1e9;
        let session = SynthesisEngine::from_config(config)
            .train(&current, &bucketizer)
            .unwrap();

        let delta = delta_of_shape(&current, shape, change_seed);
        let final_data = delta.apply(&current).unwrap();
        let updated = session.update(&delta).unwrap();

        // The graph and correlation matrix survive verbatim...
        prop_assert_eq!(
            &updated.models().structure.graph,
            &session.models().structure.graph
        );
        prop_assert_eq!(
            &updated.models().structure.correlations,
            &session.models().structure.correlations
        );
        // ...while the seed subset matches a from-scratch split of the final
        // dataset, so generation draws from the post-delta seeds.
        let fresh = SynthesisEngine::from_config(small_config(data_seed))
            .train(&final_data, &bucketizer)
            .unwrap();
        prop_assert_eq!(updated.split().seeds.records(), fresh.split().seeds.records());
        let report = updated
            .generate(&GenerateRequest::new(5).with_seed(change_seed))
            .unwrap();
        prop_assert!(report.stats.released > 0);
    }
}

/// Deterministic witness that the proptest's equivalence includes the
/// structure re-learn path: a bulk insert certainly lands records in `D_T`
/// (hash split, 64 inserts), the counts merge, the structure re-learns from
/// them, and the result still matches the from-scratch retrain bit for bit.
#[test]
fn bulk_inserts_exercise_the_structure_relearn_path() {
    let bucketizer = acs_bucketizer(&acs_schema());
    let data = generate_acs(2_400, 61);
    let session = SynthesisEngine::from_config(small_config(61))
        .train(&data, &bucketizer)
        .unwrap();

    let mut delta = DatasetDelta::new(data.schema_arc());
    for record in generate_acs(64, 62).records() {
        delta.insert(record.clone()).unwrap();
    }
    let updated = session.update(&delta).unwrap();
    let final_data = delta.apply(&data).unwrap();
    let fresh = SynthesisEngine::from_config(small_config(61))
        .train(&final_data, &bucketizer)
        .unwrap();

    assert!(
        updated.split().structure.len() > session.split().structure.len(),
        "64 hash-routed inserts must land at least one record in D_T"
    );
    assert_eq!(
        updated.models().structure_counts,
        fresh.models().structure_counts
    );
    assert_eq!(
        updated.models().structure.graph,
        fresh.models().structure.graph
    );
    assert_eq!(
        updated.models().structure.correlations,
        fresh.models().structure.correlations
    );
    assert_eq!(*updated.models().cpts, *fresh.models().cpts);
}
