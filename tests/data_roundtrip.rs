//! Property-based integration tests on the data substrate: CSV round-trips
//! and schema validation across crates.

use proptest::prelude::*;
use sgf::data::acs::{acs_schema, AcsGenerator};
use sgf::data::{csv, Dataset, Record};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any dataset of in-domain ACS records survives a CSV write/read round-trip.
    #[test]
    fn csv_roundtrip_preserves_acs_records(seed in 0u64..5000, n in 1usize..40) {
        use rand::SeedableRng;
        let generator = AcsGenerator::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data = generator.generate(n, &mut rng).unwrap();
        let mut buffer = Vec::new();
        csv::write_csv(&data, &mut buffer).unwrap();
        let parsed = csv::read_csv(generator.schema(), &buffer[..]).unwrap();
        prop_assert_eq!(parsed.records(), data.records());
    }

    /// Schema validation rejects any record with an out-of-domain value.
    #[test]
    fn out_of_domain_values_are_rejected(attr in 0usize..11, bump in 1u16..100) {
        let schema = Arc::new(acs_schema());
        let mut values: Vec<u16> = (0..11).map(|_| 0u16).collect();
        values[attr] = schema.cardinality(attr) as u16 + bump - 1;
        let mut dataset = Dataset::new(Arc::clone(&schema));
        prop_assert!(dataset.push(Record::new(values)).is_err());
    }
}
