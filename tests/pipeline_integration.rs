//! Cross-crate integration tests: the full pipeline from population generation
//! through model learning, plausible-deniability release, and evaluation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf::core::{
    satisfies_plausible_deniability, Mechanism, PipelineConfig, PrivacyTestConfig,
    SynthesisPipeline,
};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf::model::{OmegaSpec, SeedSynthesizer};
use std::sync::Arc;

fn small_config(target: usize, seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::paper_defaults(target);
    config.privacy_test =
        PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2_000));
    config.max_candidate_factor = 30;
    config.seed = seed;
    config
}

/// Deterministic end-to-end smoke test on a small population: fixed seeds all
/// the way down, so every run of the suite exercises the identical pipeline
/// trace and checks the pass-rate / synthetic-count bookkeeping invariants.
#[test]
fn deterministic_smoke_run_upholds_count_and_pass_rate_invariants() {
    let population = generate_acs(3_000, 42);
    let bucketizer = acs_bucketizer(&acs_schema());
    let config = small_config(25, 42);
    let run = || {
        SynthesisPipeline::new(config)
            .run(&population, &bucketizer)
            .unwrap()
    };
    let result = run();

    // Count invariants: the mechanism releases at most the target, never more
    // than it proposed, and proposes no more than the candidate cap.
    assert!(!result.synthetics.is_empty());
    assert!(result.synthetics.len() <= 25);
    assert_eq!(result.synthetics.len(), result.stats.released);
    assert!(result.stats.released <= result.stats.candidates);
    assert!(result.stats.candidates <= 25 * config.max_candidate_factor);

    // Pass-rate invariants: consistent with the raw counters and in (0, 1].
    let pass_rate = result.stats.pass_rate();
    assert!(pass_rate > 0.0 && pass_rate <= 1.0);
    assert!(
        (pass_rate - result.stats.released as f64 / result.stats.candidates as f64).abs() < 1e-12
    );
    // Every privacy test examined at least one seed record per candidate.
    assert!(result.stats.records_examined >= result.stats.candidates);

    // Determinism: an identical configuration reproduces the exact trace.
    let again = run();
    assert_eq!(result.synthetics.records(), again.synthetics.records());
    assert_eq!(result.stats.candidates, again.stats.candidates);
    assert_eq!(result.stats.released, again.stats.released);
    assert_eq!(result.stats.records_examined, again.stats.records_examined);
}

#[test]
fn end_to_end_release_respects_schema_and_budget() {
    let population = generate_acs(5_000, 1);
    let bucketizer = acs_bucketizer(&acs_schema());
    let result = SynthesisPipeline::new(small_config(60, 1))
        .run(&population, &bucketizer)
        .unwrap();

    assert!(!result.synthetics.is_empty());
    assert!(result.synthetics.len() <= 60);
    for record in result.synthetics.records() {
        population
            .schema()
            .validate_values(record.values())
            .unwrap();
    }
    // Randomized test => a finite per-release (epsilon, delta) bound exists.
    let per_release = result
        .budget
        .per_release
        .expect("randomized test provides a DP bound");
    assert!(per_release.epsilon.is_finite() && per_release.epsilon > 0.0);
    assert!(per_release.delta > 0.0 && per_release.delta < 1e-3);
    // The end-to-end total composes over the released records.
    let total = result.budget.total();
    assert!(total.epsilon >= per_release.epsilon);
}

#[test]
fn pipeline_is_reproducible_for_a_fixed_seed() {
    let population = generate_acs(4_000, 2);
    let bucketizer = acs_bucketizer(&acs_schema());
    let a = SynthesisPipeline::new(small_config(30, 7))
        .run(&population, &bucketizer)
        .unwrap();
    let b = SynthesisPipeline::new(small_config(30, 7))
        .run(&population, &bucketizer)
        .unwrap();
    assert_eq!(a.synthetics.records(), b.synthetics.records());
    let c = SynthesisPipeline::new(small_config(30, 8))
        .run(&population, &bucketizer)
        .unwrap();
    assert_ne!(a.synthetics.records(), c.synthetics.records());
}

#[test]
fn released_records_satisfy_the_deniability_criterion() {
    // Use the deterministic test directly so the released candidates can be
    // checked against Definition 1 (Privacy Test 1 is strictly stronger).
    let population = generate_acs(5_000, 3);
    let bucketizer = acs_bucketizer(&acs_schema());
    let mut rng = StdRng::seed_from_u64(3);
    let split = sgf::data::split_dataset(
        &population,
        &sgf::data::SplitSpec::paper_defaults(),
        &mut rng,
    )
    .unwrap();
    let pipeline = SynthesisPipeline::new(small_config(10, 3));
    let models = pipeline.learn_models(&split, &bucketizer).unwrap();
    let synthesizer = SeedSynthesizer::new(Arc::clone(&models.cpts), 9).unwrap();

    let k = 15;
    let gamma = 4.0;
    let test = PrivacyTestConfig::deterministic(k, gamma);
    let mechanism = Mechanism::new(&synthesizer, &split.seeds, test).unwrap();

    let mut checked = 0;
    for _ in 0..200 {
        let report = mechanism.propose(&mut rng).unwrap();
        if report.released() {
            let seed = split.seeds.record(report.seed_index);
            assert!(
                satisfies_plausible_deniability(
                    &synthesizer,
                    &split.seeds,
                    seed,
                    &report.record,
                    k,
                    gamma
                )
                .unwrap(),
                "released record must satisfy ({k}, {gamma})-plausible deniability"
            );
            checked += 1;
            if checked >= 10 {
                break;
            }
        }
    }
    assert!(
        checked > 0,
        "at least one candidate should have been released"
    );
}

#[test]
fn synthetics_preserve_pairwise_structure_better_than_marginals() {
    let population = generate_acs(16_000, 4);
    let bucketizer = acs_bucketizer(&acs_schema());
    let mut config = small_config(800, 4);
    config.omega = OmegaSpec::Fixed(9);
    let result = SynthesisPipeline::new(config)
        .run(&population, &bucketizer)
        .unwrap();
    assert!(
        result.synthetics.len() >= 400,
        "need enough synthetics for a stable comparison"
    );

    let mut rng = StdRng::seed_from_u64(4);
    let marginal_data = result
        .models
        .marginal
        .sample_dataset(result.synthetics.len(), &mut rng);

    // Restrict to pairs of moderate-cardinality attributes: with the reduced
    // training-set sizes used in CI, the Dirichlet smoothing of the CPTs for
    // very wide attributes (AGE: 80 values, WKHP: 100 values) dominates the
    // total-variation distance and obscures the correlation-preservation
    // signal Figure 4 is about.  (The full-scale experiment binary `fig4`
    // compares all pairs.)
    let schema = population.schema();
    let moderate: Vec<usize> = (0..schema.len())
        .filter(|&a| schema.cardinality(a) <= 25)
        .collect();
    let mean_pair_distance = |candidate: &sgf::data::Dataset| -> f64 {
        let mut total = 0.0;
        let mut pairs = 0usize;
        for (idx, &i) in moderate.iter().enumerate() {
            for &j in &moderate[idx + 1..] {
                let reference = sgf::stats::JointHistogram::from_columns(&result.split.test, i, j);
                let cand = sgf::stats::JointHistogram::from_columns(candidate, i, j);
                total +=
                    sgf::stats::total_variation(&reference.probabilities(), &cand.probabilities());
                pairs += 1;
            }
        }
        total / pairs as f64
    };
    let synthetic_pairs = mean_pair_distance(&result.synthetics);
    let marginal_pairs = mean_pair_distance(&marginal_data);
    assert!(
        synthetic_pairs < marginal_pairs,
        "synthetics ({synthetic_pairs:.3}) should preserve pairs better than marginals ({marginal_pairs:.3})"
    );
}

#[test]
fn marginal_model_candidates_always_pass_the_test() {
    // For a seed-independent model every record is an equally plausible seed,
    // so the deterministic test passes whenever |D| >= k (Section 8).
    let population = generate_acs(2_000, 5);
    let marginal =
        sgf::model::MarginalModel::learn(&population, sgf::model::MarginalConfig::default())
            .unwrap();
    let test = PrivacyTestConfig::deterministic(100, 4.0);
    let mechanism = Mechanism::new(&marginal, &population, test).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let (released, stats) = mechanism.release_batch(30, &mut rng).unwrap();
    assert_eq!(released.len(), 30);
    assert!((stats.pass_rate() - 1.0).abs() < 1e-12);
}
