//! Property-based equivalence of the seed stores: for random datasets,
//! candidates, and privacy-test configurations, the inverted index and the
//! linear scan must agree on every pass/fail decision, plausible-seed count,
//! and on the RNG stream they leave behind — across k, γ, both privacy tests
//! (deterministic and randomized), and the early-termination knobs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sgf::core::{run_with_store, PrivacyTestConfig};
use sgf::data::{Attribute, AttributeBuckets, Bucketizer, Dataset, Record, Schema};
use sgf::index::{InvertedIndexStore, LinearScanStore, SeedStore};
use sgf::model::GenerativeModel;
use std::sync::Arc;

const CARDINALITIES: [usize; 4] = [4, 6, 3, 5];

/// Toy model with an explicit agreement guarantee: a seed generates `y` with
/// probability zero unless it matches `y` on every `kept` attribute, and with
/// a Hamming-decaying probability over the remaining attributes otherwise.
struct KeptModel {
    schema: Schema,
    kept: Vec<usize>,
}

impl GenerativeModel for KeptModel {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn generate(&self, seed: &Record, _rng: &mut dyn RngCore) -> Record {
        seed.clone()
    }
    fn probability(&self, seed: &Record, y: &Record) -> f64 {
        let mut rest = 0i32;
        for attr in 0..self.schema.len() {
            if self.kept.contains(&attr) {
                if seed.get(attr) != y.get(attr) {
                    return 0.0;
                }
            } else if seed.get(attr) != y.get(attr) {
                rest += 1;
            }
        }
        0.35f64.powi(rest + 1)
    }
    fn exact_match_attributes(&self) -> Option<&[usize]> {
        Some(&self.kept)
    }
}

fn schema() -> Schema {
    Schema::new(
        CARDINALITIES
            .iter()
            .enumerate()
            .map(|(i, &c)| Attribute::categorical_anon(format!("X{i}"), c))
            .collect(),
    )
    .unwrap()
}

type Row = (u16, u16, u16, u16);

/// One in-domain record as a tuple strategy (the stub proptest has no map
/// combinator, so rows travel as tuples and convert in the test body).
fn row() -> (
    std::ops::Range<u16>,
    std::ops::Range<u16>,
    std::ops::Range<u16>,
    std::ops::Range<u16>,
) {
    (0..4u16, 0..6u16, 0..3u16, 0..5u16)
}

fn to_record((a, b, c, d): Row) -> Record {
    Record::new(vec![a, b, c, d])
}

fn build_fixture(rows: Vec<Row>, kept_mask: &[bool]) -> (KeptModel, Dataset, Arc<Schema>) {
    let schema = Arc::new(schema());
    let records: Vec<Record> = rows.into_iter().map(to_record).collect();
    let dataset = Dataset::from_records_unchecked(Arc::clone(&schema), records);
    let kept: Vec<usize> = (0..4).filter(|&a| kept_mask[a]).collect();
    let model = KeptModel {
        schema: (*schema).clone(),
        kept,
    };
    (model, dataset, schema)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Scan and inverted index (identity-bucketized *and* coarsely
    /// bucketized) agree on decisions, counts, and RNG consumption.
    #[test]
    fn stores_agree_on_every_outcome(
        rows in proptest::collection::vec(row(), 20..120),
        kept_mask in proptest::collection::vec(any::<bool>(), 4),
        candidate in row(),
        seed_choice in any::<usize>(),
        k in 1usize..15,
        gamma in 1.5f64..6.0,
        epsilon0 in proptest::option::of(0.2f64..3.0),
        max_plausible in proptest::option::of(1usize..20),
        max_check in proptest::option::of(5usize..100),
        master in any::<u64>(),
    ) {
        let (model, dataset, schema) = build_fixture(rows, &kept_mask);
        let seed = dataset.record(seed_choice % dataset.len()).clone();
        let y = to_record(candidate);

        let config = PrivacyTestConfig {
            k,
            gamma,
            epsilon0,
            max_plausible: None,
            max_check_plausible: None,
        }
        .with_limits(max_plausible, max_check);

        let weights = [0.3, 0.9, 0.1, 0.5];
        let scan = LinearScanStore::new(&dataset);
        let identity_index =
            InvertedIndexStore::build(&dataset, &Bucketizer::identity(&schema), &weights, 4)
                .unwrap();
        // Coarse buckets on the widest attribute: posting lists become
        // supersets, the exact check on survivors must still line up.
        let coarse_bucketizer = Bucketizer::identity(&schema)
            .with_attribute(1, AttributeBuckets::fixed_width(6, 2).unwrap())
            .unwrap();
        let coarse_index =
            InvertedIndexStore::build(&dataset, &coarse_bucketizer, &weights, 2).unwrap();

        let stores: [&dyn SeedStore; 3] = [&scan, &identity_index, &coarse_index];
        let mut outcomes = Vec::new();
        let mut post_rng = Vec::new();
        for store in stores {
            let mut rng = StdRng::seed_from_u64(master);
            let outcome =
                run_with_store(&model, &dataset, store, &seed, &y, &config, &mut rng).unwrap();
            outcomes.push(outcome);
            post_rng.push(rng.next_u64());
        }
        for other in &outcomes[1..] {
            prop_assert_eq!(outcomes[0].passed, other.passed);
            prop_assert_eq!(outcomes[0].plausible_seeds, other.plausible_seeds);
            prop_assert_eq!(outcomes[0].seed_partition, other.seed_partition);
            prop_assert_eq!(outcomes[0].threshold, other.threshold);
        }
        prop_assert_eq!(post_rng[0], post_rng[1]);
        prop_assert_eq!(post_rng[0], post_rng[2]);
        // The index never examines more candidates than the store holds.
        prop_assert!(outcomes[1].records_examined <= dataset.len());
    }

    /// With no early-termination knobs the plausible count of a *failing*
    /// deterministic test equals the exact partition cardinality, and the
    /// index reproduces it while skipping provably non-plausible records.
    #[test]
    fn uncapped_counts_match_partition_size(
        rows in proptest::collection::vec(row(), 20..80),
        kept_mask in proptest::collection::vec(any::<bool>(), 4),
        seed_choice in any::<usize>(),
        k in 1usize..10,
        gamma in 2.0f64..5.0,
    ) {
        let (model, dataset, schema) = build_fixture(rows, &kept_mask);
        let seed = dataset.record(seed_choice % dataset.len()).clone();
        // Candidate generated from the seed itself: identical on kept attrs.
        let y = seed.clone();
        let config = PrivacyTestConfig::deterministic(k, gamma);

        let scan = LinearScanStore::new(&dataset);
        let index =
            InvertedIndexStore::build(&dataset, &Bucketizer::identity(&schema), &[1.0; 4], 4)
                .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let a = run_with_store(&model, &dataset, &scan, &seed, &y, &config, &mut rng).unwrap();
        let b = run_with_store(&model, &dataset, &index, &seed, &y, &config, &mut rng).unwrap();
        prop_assert_eq!(a.passed, b.passed);
        prop_assert_eq!(a.plausible_seeds, b.plausible_seeds);
        // The deterministic uncapped count stops early only at the threshold,
        // so when the test fails it counted the full partition.
        if !a.passed {
            let partition = a.seed_partition.unwrap();
            let full = sgf::core::partition_size(&model, &dataset, &y, gamma, partition);
            prop_assert_eq!(a.plausible_seeds, full);
            prop_assert_eq!(b.plausible_seeds, full);
        }
    }
}
