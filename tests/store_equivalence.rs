//! Property-based equivalence of the seed stores: for random datasets,
//! candidates, and privacy-test configurations, the inverted index, the
//! partition-aware class store, and the linear scan must agree on every
//! pass/fail decision, plausible-seed count, and on the RNG stream they leave
//! behind — across k, γ, both privacy tests (deterministic and randomized),
//! and the early-termination knobs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sgf::core::{partition_index, run_with_store, PrivacyTestConfig};
use sgf::data::{Attribute, AttributeBuckets, Bucketizer, Dataset, Record, Schema};
use sgf::index::{InvertedIndexStore, LinearScanStore, PartitionIndexStore, SeedStore};
use sgf::model::GenerativeModel;
use std::sync::Arc;

const CARDINALITIES: [usize; 4] = [4, 6, 3, 5];
const ALL_ATTRIBUTES: [usize; 4] = [0, 1, 2, 3];

/// Toy model with an explicit agreement guarantee: a seed generates `y` with
/// probability zero unless it matches `y` on every `kept` attribute, and with
/// a Hamming-decaying probability over the remaining attributes otherwise.
struct KeptModel {
    schema: Schema,
    kept: Vec<usize>,
}

impl GenerativeModel for KeptModel {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn generate(&self, seed: &Record, _rng: &mut dyn RngCore) -> Record {
        seed.clone()
    }
    fn probability(&self, seed: &Record, y: &Record) -> f64 {
        let mut rest = 0i32;
        for attr in 0..self.schema.len() {
            if self.kept.contains(&attr) {
                if seed.get(attr) != y.get(attr) {
                    return 0.0;
                }
            } else if seed.get(attr) != y.get(attr) {
                rest += 1;
            }
        }
        0.35f64.powi(rest + 1)
    }
    fn exact_match_attributes(&self) -> Option<&[usize]> {
        Some(&self.kept)
    }
    fn likelihood_attributes(&self) -> Option<&[usize]> {
        // The Hamming decay reads every attribute of the seed, so only the
        // full projection determines the likelihood.
        Some(&ALL_ATTRIBUTES)
    }
}

/// A model with the seed-synthesizer's likelihood structure: once the kept
/// attributes agree, the probability is a function of the candidate alone, so
/// the kept projection fully determines `p_d(y)` — the guarantee the
/// partition store's class counting relies on.
struct ProjectiveModel {
    schema: Schema,
    kept: Vec<usize>,
}

impl GenerativeModel for ProjectiveModel {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn generate(&self, seed: &Record, _rng: &mut dyn RngCore) -> Record {
        seed.clone()
    }
    fn probability(&self, seed: &Record, y: &Record) -> f64 {
        for &attr in &self.kept {
            if seed.get(attr) != y.get(attr) {
                return 0.0;
            }
        }
        let spread: u16 = y.values().iter().sum::<u16>() % 5;
        0.3f64.powi(spread as i32 + 1)
    }
    fn exact_match_attributes(&self) -> Option<&[usize]> {
        Some(&self.kept)
    }
    fn likelihood_attributes(&self) -> Option<&[usize]> {
        Some(&self.kept)
    }
}

fn schema() -> Schema {
    Schema::new(
        CARDINALITIES
            .iter()
            .enumerate()
            .map(|(i, &c)| Attribute::categorical_anon(format!("X{i}"), c))
            .collect(),
    )
    .unwrap()
}

type Row = (u16, u16, u16, u16);

/// One in-domain record as a tuple strategy (the stub proptest has no map
/// combinator, so rows travel as tuples and convert in the test body).
fn row() -> (
    std::ops::Range<u16>,
    std::ops::Range<u16>,
    std::ops::Range<u16>,
    std::ops::Range<u16>,
) {
    (0..4u16, 0..6u16, 0..3u16, 0..5u16)
}

fn to_record((a, b, c, d): Row) -> Record {
    Record::new(vec![a, b, c, d])
}

fn build_fixture(rows: Vec<Row>, kept_mask: &[bool]) -> (KeptModel, Dataset, Arc<Schema>) {
    let schema = Arc::new(schema());
    let records: Vec<Record> = rows.into_iter().map(to_record).collect();
    let dataset = Dataset::from_records_unchecked(Arc::clone(&schema), records);
    let kept: Vec<usize> = (0..4).filter(|&a| kept_mask[a]).collect();
    let model = KeptModel {
        schema: (*schema).clone(),
        kept,
    };
    (model, dataset, schema)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Scan and inverted index (identity-bucketized *and* coarsely
    /// bucketized) agree on decisions, counts, and RNG consumption.
    #[test]
    fn stores_agree_on_every_outcome(
        rows in proptest::collection::vec(row(), 20..120),
        kept_mask in proptest::collection::vec(any::<bool>(), 4),
        candidate in row(),
        seed_choice in any::<usize>(),
        k in 1usize..15,
        gamma in 1.5f64..6.0,
        epsilon0 in proptest::option::of(0.2f64..3.0),
        max_plausible in proptest::option::of(1usize..20),
        max_check in proptest::option::of(5usize..100),
        master in any::<u64>(),
    ) {
        let (model, dataset, schema) = build_fixture(rows, &kept_mask);
        let seed = dataset.record(seed_choice % dataset.len()).clone();
        let y = to_record(candidate);

        let config = PrivacyTestConfig {
            k,
            gamma,
            epsilon0,
            max_plausible: None,
            max_check_plausible: None,
        }
        .with_limits(max_plausible, max_check);

        let weights = [0.3, 0.9, 0.1, 0.5];
        let scan = LinearScanStore::new(&dataset);
        let identity_index =
            InvertedIndexStore::build(&dataset, &Bucketizer::identity(&schema), &weights, 4)
                .unwrap();
        // Coarse buckets on the widest attribute: posting lists become
        // supersets, the exact check on survivors must still line up.
        let coarse_bucketizer = Bucketizer::identity(&schema)
            .with_attribute(1, AttributeBuckets::fixed_width(6, 2).unwrap())
            .unwrap();
        let coarse_index =
            InvertedIndexStore::build(&dataset, &coarse_bucketizer, &weights, 2).unwrap();
        // Partition store keyed on every attribute: it covers the model's
        // full-projection likelihood guarantee, so tests run at class
        // granularity (classes = groups of duplicate rows).
        let partition_all = PartitionIndexStore::build(&dataset, &ALL_ATTRIBUTES).unwrap();
        // Partition store keyed on the kept attributes only: it does NOT
        // cover the model's likelihood set, so the test degrades to the
        // per-record class walk — which must still line up.
        let kept: Vec<usize> = (0..4).filter(|&a| kept_mask[a]).collect();
        let partition_kept = PartitionIndexStore::build(&dataset, &kept).unwrap();

        let stores: [&dyn SeedStore; 5] = [
            &scan,
            &identity_index,
            &coarse_index,
            &partition_all,
            &partition_kept,
        ];
        let mut outcomes = Vec::new();
        let mut post_rng = Vec::new();
        for store in stores {
            let mut rng = StdRng::seed_from_u64(master);
            let outcome =
                run_with_store(&model, &dataset, store, &seed, &y, &config, &mut rng).unwrap();
            outcomes.push(outcome);
            post_rng.push(rng.next_u64());
        }
        for other in &outcomes[1..] {
            prop_assert_eq!(outcomes[0].passed, other.passed);
            prop_assert_eq!(outcomes[0].plausible_seeds, other.plausible_seeds);
            prop_assert_eq!(outcomes[0].seed_partition, other.seed_partition);
            prop_assert_eq!(outcomes[0].threshold, other.threshold);
        }
        for &post in &post_rng[1..] {
            prop_assert_eq!(post_rng[0], post);
        }
        // The indexes never examine more candidates than the store holds,
        // and class-level counting examines at most one record per class.
        prop_assert!(outcomes[1].records_examined <= dataset.len());
        prop_assert!(outcomes[3].records_examined <= partition_all.class_count());
    }

    /// With no early-termination knobs the plausible count of a *failing*
    /// deterministic test equals the exact partition cardinality, and the
    /// index reproduces it while skipping provably non-plausible records.
    #[test]
    fn uncapped_counts_match_partition_size(
        rows in proptest::collection::vec(row(), 20..80),
        kept_mask in proptest::collection::vec(any::<bool>(), 4),
        seed_choice in any::<usize>(),
        k in 1usize..10,
        gamma in 2.0f64..5.0,
    ) {
        let (model, dataset, schema) = build_fixture(rows, &kept_mask);
        let seed = dataset.record(seed_choice % dataset.len()).clone();
        // Candidate generated from the seed itself: identical on kept attrs.
        let y = seed.clone();
        let config = PrivacyTestConfig::deterministic(k, gamma);

        let scan = LinearScanStore::new(&dataset);
        let index =
            InvertedIndexStore::build(&dataset, &Bucketizer::identity(&schema), &[1.0; 4], 4)
                .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let a = run_with_store(&model, &dataset, &scan, &seed, &y, &config, &mut rng).unwrap();
        let b = run_with_store(&model, &dataset, &index, &seed, &y, &config, &mut rng).unwrap();
        prop_assert_eq!(a.passed, b.passed);
        prop_assert_eq!(a.plausible_seeds, b.plausible_seeds);
        // The deterministic uncapped count stops early only at the threshold,
        // so when the test fails it counted the full partition.
        if !a.passed {
            let partition = a.seed_partition.unwrap();
            let full = sgf::core::partition_size(&model, &dataset, &y, gamma, partition);
            prop_assert_eq!(a.plausible_seeds, full);
            prop_assert_eq!(b.plausible_seeds, full);
        }
    }

    /// A model whose likelihood is determined by the kept projection (the
    /// seed-synthesizer structure): the partition store counts whole
    /// equivalence classes with multiplicity — through both its single-class
    /// lookup (keyed exactly on the kept attributes) and its pruned class
    /// walk (keyed on a superset) — and must reproduce the scan's decision,
    /// count, and RNG stream bit for bit.
    #[test]
    fn class_counting_matches_record_level(
        rows in proptest::collection::vec(row(), 20..120),
        kept_mask in proptest::collection::vec(any::<bool>(), 4),
        candidate in row(),
        seed_choice in any::<usize>(),
        k in 1usize..15,
        gamma in 1.5f64..6.0,
        epsilon0 in proptest::option::of(0.2f64..3.0),
        max_plausible in proptest::option::of(1usize..20),
        max_check in proptest::option::of(5usize..100),
        master in any::<u64>(),
    ) {
        let schema = Arc::new(schema());
        let records: Vec<Record> = rows.into_iter().map(to_record).collect();
        let dataset = Dataset::from_records_unchecked(Arc::clone(&schema), records);
        let kept: Vec<usize> = (0..4).filter(|&a| kept_mask[a]).collect();
        let model = ProjectiveModel {
            schema: (*schema).clone(),
            kept: kept.clone(),
        };
        let seed = dataset.record(seed_choice % dataset.len()).clone();
        let y = to_record(candidate);
        let config = PrivacyTestConfig {
            k,
            gamma,
            epsilon0,
            max_plausible: None,
            max_check_plausible: None,
        }
        .with_limits(max_plausible, max_check);

        let scan = LinearScanStore::new(&dataset);
        // Keyed exactly on the likelihood set: the single-class lookup path.
        let exact_key = PartitionIndexStore::build(&dataset, &kept).unwrap();
        // Keyed on a strict superset (when one exists): the pruned-walk path.
        let superset: Vec<usize> = {
            let mut s = kept.clone();
            if let Some(extra) = (0..4).find(|a| !kept.contains(a)) {
                s.push(extra);
            }
            s
        };
        let superset_key = PartitionIndexStore::build(&dataset, &superset).unwrap();

        let stores: [&dyn SeedStore; 3] = [&scan, &exact_key, &superset_key];
        let mut outcomes = Vec::new();
        let mut post_rng = Vec::new();
        for store in stores {
            let mut rng = StdRng::seed_from_u64(master);
            let outcome =
                run_with_store(&model, &dataset, store, &seed, &y, &config, &mut rng).unwrap();
            outcomes.push(outcome);
            post_rng.push(rng.next_u64());
        }
        for other in &outcomes[1..] {
            prop_assert_eq!(outcomes[0].passed, other.passed);
            prop_assert_eq!(outcomes[0].plausible_seeds, other.plausible_seeds);
            prop_assert_eq!(outcomes[0].seed_partition, other.seed_partition);
            prop_assert_eq!(outcomes[0].threshold, other.threshold);
            prop_assert_eq!(post_rng[0], post_rng[1]);
            prop_assert_eq!(post_rng[0], post_rng[2]);
        }
        // Both partition stores cover the model: tests run at class
        // granularity, never touching more representatives than classes.
        if outcomes[0].seed_partition.is_some() {
            prop_assert!(outcomes[1].via_classes);
            prop_assert!(outcomes[2].via_classes);
            prop_assert!(outcomes[1].records_examined <= 1, "exact key: one class lookup");
            prop_assert!(outcomes[2].records_examined <= superset_key.class_count());
        }
    }

    /// The class-match cache is invisible to every observable outcome: a
    /// cache-carrying partition store must reproduce the plain store's
    /// decisions, counts, and RNG stream bit for bit across a whole stream of
    /// candidates, while its hit/miss telemetry tracks exactly the first
    /// sighting of each likelihood projection. Models whose likelihood set
    /// escapes the exact-match guarantee must bypass the cache entirely.
    #[test]
    fn class_cache_is_invisible_to_outcomes(
        rows in proptest::collection::vec(row(), 20..120),
        kept_mask in proptest::collection::vec(any::<bool>(), 4),
        candidates in proptest::collection::vec(row(), 2..12),
        seed_choice in any::<usize>(),
        k in 1usize..15,
        gamma in 1.5f64..6.0,
        epsilon0 in proptest::option::of(0.2f64..3.0),
        max_plausible in proptest::option::of(1usize..20),
        max_check in proptest::option::of(5usize..100),
        master in any::<u64>(),
    ) {
        let schema = Arc::new(schema());
        let records: Vec<Record> = rows.into_iter().map(to_record).collect();
        let dataset = Dataset::from_records_unchecked(Arc::clone(&schema), records);
        let kept: Vec<usize> = (0..4).filter(|&a| kept_mask[a]).collect();
        let model = ProjectiveModel {
            schema: (*schema).clone(),
            kept: kept.clone(),
        };
        let seed = dataset.record(seed_choice % dataset.len()).clone();
        let config = PrivacyTestConfig {
            k,
            gamma,
            epsilon0,
            max_plausible: None,
            max_check_plausible: None,
        }
        .with_limits(max_plausible, max_check);

        let plain = PartitionIndexStore::build(&dataset, &kept).unwrap();
        let cached = PartitionIndexStore::build(&dataset, &kept)
            .unwrap()
            .with_class_cache();
        let mut seen = std::collections::BTreeSet::new();
        for candidate in candidates {
            let y = to_record(candidate);
            let mut rng_a = StdRng::seed_from_u64(master);
            let mut rng_b = StdRng::seed_from_u64(master);
            let a =
                run_with_store(&model, &dataset, &plain, &seed, &y, &config, &mut rng_a).unwrap();
            let b =
                run_with_store(&model, &dataset, &cached, &seed, &y, &config, &mut rng_b).unwrap();
            prop_assert_eq!(a.passed, b.passed);
            prop_assert_eq!(a.plausible_seeds, b.plausible_seeds);
            prop_assert_eq!(a.seed_partition, b.seed_partition);
            prop_assert_eq!(a.threshold, b.threshold);
            prop_assert_eq!(a.records_examined, b.records_examined);
            prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64());
            prop_assert!(a.cache_hit.is_none(), "plain store never reports cache traffic");
            if b.via_classes {
                // First sighting of a projection is a miss, repeats are hits.
                let projection: Vec<u16> = kept.iter().map(|&attr| y.get(attr)).collect();
                prop_assert_eq!(b.cache_hit, Some(!seen.insert(projection)));
            } else {
                prop_assert!(b.cache_hit.is_none());
            }
        }
        // A model whose likelihood reads attributes outside the exact-match
        // guarantee cannot use the cache: the cached row would not be
        // seed-independent, so the store must fall back to inline evaluation.
        let wide = KeptModel {
            schema: (*schema).clone(),
            kept: kept.clone(),
        };
        let y = seed.clone();
        let mut rng = StdRng::seed_from_u64(master);
        let w = run_with_store(&wide, &dataset, &cached, &seed, &y, &config, &mut rng).unwrap();
        if kept.len() < 4 {
            prop_assert!(w.cache_hit.is_none(), "likelihood ⊄ exact-match must bypass");
        }
    }
}

/// The documented partition convention `γ^{-(i+1)} < p ≤ γ^{-i}`: an exact
/// power `γ^{-i}` sits in partition `i` (closed above), and any probability
/// above 1 (floating-point slack) clamps into partition 0.
#[test]
fn partition_index_boundary_convention() {
    for &gamma in &[1.5f64, 2.0, 3.0, 4.0, 10.0] {
        for i in 0..25i32 {
            let exact = gamma.powi(-i);
            assert_eq!(
                partition_index(exact, gamma),
                Some(i as u32),
                "exact power gamma={gamma} i={i}"
            );
            // Just above the open lower bound γ^{-(i+1)} still belongs to i.
            let above_lower = gamma.powi(-(i + 1)) * (1.0 + 1e-9);
            assert_eq!(
                partition_index(above_lower, gamma),
                Some(i as u32),
                "above lower bound gamma={gamma} i={i}"
            );
        }
        for p_over_one in [1.0 + f64::EPSILON, 1.5, 2.0, 1e6] {
            assert_eq!(
                partition_index(p_over_one, gamma),
                Some(0),
                "p={p_over_one} must clamp into partition 0"
            );
        }
        assert_eq!(partition_index(0.0, gamma), None);
    }
}

/// Power-decay model: probabilities are *exact* powers `γ^{-d}` of the
/// non-kept Hamming distance, so every evaluation lands exactly on a
/// partition boundary — the worst case for the boundary-nudging arithmetic.
struct PowerModel {
    schema: Schema,
    kept: Vec<usize>,
    gamma: f64,
}

impl GenerativeModel for PowerModel {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn generate(&self, seed: &Record, _rng: &mut dyn RngCore) -> Record {
        seed.clone()
    }
    fn probability(&self, seed: &Record, y: &Record) -> f64 {
        let mut rest = 0i32;
        for attr in 0..self.schema.len() {
            if self.kept.contains(&attr) {
                if seed.get(attr) != y.get(attr) {
                    return 0.0;
                }
            } else if seed.get(attr) != y.get(attr) {
                rest += 1;
            }
        }
        self.gamma.powi(-rest)
    }
    fn exact_match_attributes(&self) -> Option<&[usize]> {
        Some(&self.kept)
    }
    fn likelihood_attributes(&self) -> Option<&[usize]> {
        Some(&ALL_ATTRIBUTES)
    }
}

/// All three stores agree when every probability sits exactly on a partition
/// boundary `p = γ^{-i}` (including `p = γ^0 = 1`), across several γ and k.
#[test]
fn stores_agree_at_exact_partition_boundaries() {
    let schema = Arc::new(schema());
    let mut rng = StdRng::seed_from_u64(99);
    let records: Vec<Record> = (0..160)
        .map(|_| {
            to_record((
                (rng.next_u64() % 4) as u16,
                (rng.next_u64() % 6) as u16,
                (rng.next_u64() % 3) as u16,
                (rng.next_u64() % 5) as u16,
            ))
        })
        .collect();
    let dataset = Dataset::from_records_unchecked(Arc::clone(&schema), records);
    let scan = LinearScanStore::new(&dataset);
    let inverted = InvertedIndexStore::build(
        &dataset,
        &Bucketizer::identity(&schema),
        &[1.0, 0.5, 0.25, 0.75],
        4,
    )
    .unwrap();
    let partition = PartitionIndexStore::build(&dataset, &ALL_ATTRIBUTES).unwrap();
    let stores: [&dyn SeedStore; 3] = [&scan, &inverted, &partition];

    for &gamma in &[1.5f64, 2.0, 4.0] {
        let model = PowerModel {
            schema: (*schema).clone(),
            kept: vec![0],
            gamma,
        };
        for k in [1usize, 3, 8, 20] {
            for master in 0..8u64 {
                let seed = dataset.record((master as usize * 7) % dataset.len());
                let y = seed.clone();
                for config in [
                    PrivacyTestConfig::deterministic(k, gamma),
                    PrivacyTestConfig::randomized(k, gamma, 1.0).with_limits(Some(k), Some(60)),
                ] {
                    let mut outcomes = Vec::new();
                    let mut post_rng = Vec::new();
                    for store in stores {
                        let mut rng = StdRng::seed_from_u64(master);
                        let outcome =
                            run_with_store(&model, &dataset, store, seed, &y, &config, &mut rng)
                                .unwrap();
                        outcomes.push(outcome);
                        post_rng.push(rng.next_u64());
                    }
                    for (other, post) in outcomes[1..].iter().zip(&post_rng[1..]) {
                        assert_eq!(outcomes[0].passed, other.passed, "gamma={gamma} k={k}");
                        assert_eq!(outcomes[0].plausible_seeds, other.plausible_seeds);
                        assert_eq!(outcomes[0].seed_partition, other.seed_partition);
                        assert_eq!(outcomes[0].threshold, other.threshold);
                        assert_eq!(post_rng[0], *post);
                    }
                    // The candidate equals its seed: the seed's probability
                    // is exactly γ^0 = 1, the closed top of partition 0.
                    assert_eq!(outcomes[0].seed_partition, Some(0));
                }
            }
        }
    }
}

/// Probabilities above 1 clamp into partition 0 identically for record-level
/// and class-level counting.
struct ClampModel {
    schema: Schema,
}

impl GenerativeModel for ClampModel {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn generate(&self, seed: &Record, _rng: &mut dyn RngCore) -> Record {
        seed.clone()
    }
    fn probability(&self, seed: &Record, y: &Record) -> f64 {
        // Floating-point slack can push a "certain" generation above 1; the
        // partition machinery must clamp it into partition 0.
        if seed == y {
            1.0 + 1e-12
        } else {
            0.9
        }
    }
    fn likelihood_attributes(&self) -> Option<&[usize]> {
        Some(&ALL_ATTRIBUTES)
    }
}

#[test]
fn clamped_probabilities_agree_across_stores() {
    let schema = Arc::new(schema());
    let records: Vec<Record> = (0..40u16)
        .map(|v| to_record((v % 4, v % 6, v % 3, v % 5)))
        .collect();
    let dataset = Dataset::from_records_unchecked(Arc::clone(&schema), records);
    let model = ClampModel {
        schema: (*schema).clone(),
    };
    let scan = LinearScanStore::new(&dataset);
    let partition = PartitionIndexStore::build(&dataset, &ALL_ATTRIBUTES).unwrap();
    let seed = dataset.record(0).clone();
    let y = seed.clone();
    for gamma in [2.0f64, 4.0] {
        let config = PrivacyTestConfig::deterministic(5, gamma);
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let a = run_with_store(&model, &dataset, &scan, &seed, &y, &config, &mut rng_a).unwrap();
        let b =
            run_with_store(&model, &dataset, &partition, &seed, &y, &config, &mut rng_b).unwrap();
        // p > 1 lands in partition 0 — not rejected, not a separate bucket.
        assert_eq!(a.seed_partition, Some(0));
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.plausible_seeds, b.plausible_seeds);
        assert!(b.via_classes);
    }
}
