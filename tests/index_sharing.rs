//! Regression guard for the per-train index build: the inverted seed index is
//! built exactly once per `SynthesisEngine::train` and shared — not rebuilt —
//! by session clones and serve-owned handles over the same split.
//!
//! This is deliberately a single `#[test]` in its own integration binary: the
//! build counter is process-global, so the delta measurement must not race
//! other index-building tests in the same process.

use sgf::core::{GenerateRequest, PrivacyTestConfig, SeedIndex, SynthesisEngine};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf::index::InvertedIndexStore;
use sgf::serve::{serve, Client, GenerateCall, ServeConfig, SessionEntry};

#[test]
fn one_index_build_per_train_shared_across_clones_and_serve() {
    let population = generate_acs(4_000, 51);
    let bucketizer = acs_bucketizer(&acs_schema());
    let builds_before = InvertedIndexStore::build_count();

    // Auto policy + ~1960 seeds (≥ AUTO_MIN_SEEDS): the index is built at
    // train time.
    let session = SynthesisEngine::builder()
        .privacy_test(
            PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2_000)),
        )
        .max_candidate_factor(30)
        .seed(51)
        .train(&population, &bucketizer)
        .unwrap();
    assert!(session.seeds().len() >= SeedIndex::AUTO_MIN_SEEDS);
    assert_eq!(
        InvertedIndexStore::build_count() - builds_before,
        1,
        "training must build the index exactly once"
    );

    // Clones share the same instance — pointer-equal, not a rebuild.
    let clone_a = session.clone();
    let clone_b = clone_a.clone();
    assert!(std::ptr::eq(
        session.seed_store().unwrap(),
        clone_a.seed_store().unwrap()
    ));
    assert!(std::ptr::eq(
        session.seed_store().unwrap(),
        clone_b.seed_store().unwrap()
    ));

    // Index-backed generation works through a clone and charges the shared
    // ledger; explicit `Inverted` proves the shared index is really used.
    let report = clone_a
        .generate(
            &GenerateRequest::new(8)
                .with_seed(1)
                .with_seed_index(SeedIndex::Inverted),
        )
        .unwrap();
    assert_eq!(report.stats.index_tests, report.stats.candidates);
    assert_eq!(session.ledger().requests, 1);

    // A serve-owned handle over the same split reuses it too.
    let handle = serve(ServeConfig::default(), vec![SessionEntry::new(clone_b)]).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let release = client
        .generate(&GenerateCall::new(8).with_request(GenerateRequest::new(8).with_seed(2)))
        .unwrap();
    assert!(!release.records.is_empty());
    client.shutdown().unwrap();
    handle.join().unwrap();

    // The original handle sees the serve-side request on the shared ledger,
    // and nothing along the way rebuilt the index.
    assert_eq!(session.ledger().requests, 2);
    assert_eq!(
        InvertedIndexStore::build_count() - builds_before,
        1,
        "clones and serve handles must not rebuild the index"
    );
}
