//! Offline stub of `serde_derive`.
//!
//! Both derives expand to nothing: the annotated types simply don't get
//! serialization impls, which is fine because no workspace code serializes
//! yet. The macro *names* must exist for `#[derive(Serialize, Deserialize)]`
//! to compile.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
