//! Offline, API-compatible subset of the `rand` crate (0.8 line).
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the *exact* surface the `sgf` crates use instead of the
//! real `rand` crate: [`RngCore`], [`Rng`], [`SeedableRng`], [`rngs::StdRng`]
//! (xoshiro256** seeded via SplitMix64 — deterministic across platforms and
//! runs, which is all the paper reproduction requires), the
//! [`rngs::mock::StepRng`] counter generator, and [`seq::SliceRandom`].
//!
//! Streams produced by this [`rngs::StdRng`] are *not* bit-identical to the
//! upstream ChaCha12-based `StdRng`; they are deterministic for a given seed,
//! which is the property the deniability pipeline depends on.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type reported by fallible RNG operations (never produced by the
/// deterministic generators in this stub, but part of the `RngCore` API).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Create an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw 32/64-bit output and byte fill.
pub trait RngCore {
    /// Next 32 bits of output.
    fn next_u32(&mut self) -> u32;
    /// Next 64 bits of output.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let bytes = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&bytes[..n]);
            i += n;
        }
    }
    /// Fallible byte fill (infallible for all generators in this stub).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a generator's raw output,
/// mirroring `rand`'s `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64,
);

/// Ranges that can be sampled to yield a uniform `T`, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t as StandardSample>::sample_standard(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * <$t as StandardSample>::sample_standard(rng)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling methods, automatically available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the same scheme the
    /// upstream crate uses, so seed handling code ports over unchanged).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Build the generator from the output of another generator.
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.try_fill_bytes(seed.as_mut())?;
        Ok(Self::from_seed(seed))
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Statistically strong, tiny, and fully deterministic for a given seed.
    /// (Not stream-compatible with upstream `rand`'s ChaCha12 `StdRng`.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// A generator that yields `initial`, `initial + increment`, … —
        /// useful for making "randomized" code paths exactly predictable.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Create a counter starting at `initial`, stepping by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let value = self.value;
                self.value = self.value.wrapping_add(self.increment);
                value
            }
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices: shuffling and element choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_and_ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let i: u16 = rng.gen_range(3..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let x = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(3, 2);
        assert_eq!(rng.next_u64(), 3);
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 7);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
