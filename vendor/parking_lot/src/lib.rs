//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! Exposes `parking_lot`'s panic-free guard API (`read()` / `write()` /
//! `lock()` return guards directly, no `Result`). Poisoning is transparently
//! unwrapped: a poisoned std lock yields its inner guard, matching
//! `parking_lot`'s behavior of not poisoning at all.

use std::fmt;
use std::sync::{self, TryLockError};

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with `parking_lot`'s non-poisoning API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock around `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Mutex with `parking_lot`'s non-poisoning API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex around `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() = 5;
        assert_eq!(*lock.read(), 5);
        assert_eq!(lock.into_inner(), 5);
    }

    #[test]
    fn concurrent_readers() {
        let lock = RwLock::new(vec![1, 2, 3]);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(a.len(), b.len());
    }
}
