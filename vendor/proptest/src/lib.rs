//! Offline mini property-testing harness with a `proptest`-compatible surface.
//!
//! Supports the subset the workspace's property suites use: the [`proptest!`]
//! macro with an optional `#![proptest_config(..)]` header, range strategies
//! over integers and floats, tuple strategies, [`collection::vec`],
//! [`option::of`], [`any`], and the `prop_assert!` family.
//!
//! Differences from the real crate: no shrinking (a failing case panics with
//! the case number so it can be replayed — generation is fully deterministic
//! per test name and case index), and strategies are plain samplers rather
//! than value trees.

use std::ops::{Range, RangeInclusive};

pub mod strategy {
    //! The [`Strategy`] trait and its implementations for ranges and tuples.

    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Strategy returned by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    macro_rules! impl_any_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    impl_any_strategy!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

/// Strategy over the full domain of `T` (the `any::<T>()` entry point).
pub fn any<T>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod test_runner {
    //! Runner configuration.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Config {
        /// Number of cases each property is run with.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for [`vec()`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `element` and `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Option`s of values drawn from an inner strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// `Some` roughly half the time, drawn from `inner`; `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! Everything a property-test module normally imports.

    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-case RNG: hash of the property name mixed with the case
/// index, so suites reproduce exactly run-to-run and case numbers in failure
/// messages are replayable.
#[doc(hidden)]
pub fn __case_rng(name: &str, case: u32) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in name.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    rand::rngs::StdRng::seed_from_u64(hash ^ ((case as u64) << 1 | 1).wrapping_mul(PRIME))
}

/// Define property tests. Each `fn name(arg in strategy, ..) { body }` becomes
/// a `#[test]` that runs the body for `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest: property `{}` failed at case {}/{}",
                        stringify!($name), __case, __config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u8..10, y in 1usize..=4, f in 0.5f64..2.0) {
            prop_assert!(x < 10);
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_and_option_shapes(
            v in crate::collection::vec((0u8..3, 0u8..4), 2..6),
            o in crate::option::of(0.0f64..1.0),
            b in any::<bool>(),
        ) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&(a, b)| a < 3 && b < 4));
            if let Some(x) = o {
                prop_assert!((0.0..1.0).contains(&x));
            }
            prop_assert_ne!(b, !b);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let a = crate::__case_rng("t", 3).next_u64();
        let b = crate::__case_rng("t", 3).next_u64();
        let c = crate::__case_rng("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
