//! Offline mini benchmark harness with a `criterion`-compatible surface.
//!
//! Implements the subset the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `iter`, `iter_batched`, [`BatchSize`], [`black_box`] —
//! with a simple mean-of-samples timer instead of the real crate's
//! statistical machinery. Output is one `group/name … mean ± spread` line per
//! benchmark, which is enough to compare hot-path changes while the build
//! environment has no network access to fetch the real crate.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How batched setup output is grouped between timed runs. The stub times
/// every batch individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would batch many per allocation.
    SmallInput,
    /// Large setup output; criterion would batch few per allocation.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Time `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Time `routine` once per sample on fresh input from `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.durations.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let total: Duration = self.durations.iter().sum();
        let mean = total / self.durations.len() as u32;
        let min = self.durations.iter().min().expect("non-empty");
        let max = self.durations.iter().max().expect("non-empty");
        println!(
            "{label:<50} mean {mean:>12?}   [{min:?} .. {max:?}]   ({} samples)",
            self.durations.len()
        );
    }
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be at least 1");
        self.sample_size = samples;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Finish the group (formatting no-op in the stub).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample_size must be at least 1");
        self.sample_size = samples;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&label);
        self
    }
}

/// Bundle benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Benchmark group entry point generated by `criterion_group!`.
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point generated by `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("iter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        let mut batched = 0;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 6);
        group.finish();
    }
}
