//! Offline stub of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its configuration types
//! so they are ready for on-disk configs and wire formats, but no code path
//! serializes anything yet and the build environment has no network access.
//! This stub keeps the annotations compiling: it exposes the two trait names
//! and re-exports no-op derive macros under the same names, exactly like the
//! real facade does with its `derive` feature. Swapping in the real `serde`
//! later requires no source changes.

/// Marker for types annotated `#[derive(Serialize)]`.
///
/// The stub derive emits no impl; this trait exists so `use serde::Serialize`
/// resolves. Nothing in the workspace requires the bound.
pub trait Serialize {}

/// Marker for types annotated `#[derive(Deserialize)]`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

/// Serialization half of the facade (name-compatibility module).
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization half of the facade (name-compatibility module).
pub mod de {
    pub use crate::Deserialize;
}
